package xrank

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/suggest"
)

// Differential harness for the autosuggest subsystem: at every point of
// an incremental add/delete/compact/reopen interleaving, the engine's
// best-first trie completion must equal — scores and order, exactly —
// the brute-force scan over the same per-segment dictionaries, at shard
// counts 1 and 8.

// suggestTries is the test seam exposing the live per-segment tries in
// snapshot order (what Engine.Suggest merges).
func (e *Engine) suggestTries() []*suggest.Trie {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	out := make([]*suggest.Trie, 0, len(e.segs))
	for _, s := range e.segs {
		if s.sug != nil {
			out = append(out, s.sug)
		}
	}
	return out
}

var suggestDiffPrefixes = []string{
	"", "x", "xml", "xq", "k", "key", "keyword", "ch", "the", "s", "vol", "ranked", "zzz",
}

// checkSuggestDifferential compares Engine.Suggest against
// suggest.ScanTopK for a grid of prefixes and k values.
func checkSuggestDifferential(t *testing.T, e *Engine, stage string) {
	t.Helper()
	tries := e.suggestTries()
	if len(tries) == 0 {
		t.Fatalf("%s: no suggest tries live", stage)
	}
	for _, prefix := range suggestDiffPrefixes {
		for _, k := range []int{1, 3, 50} {
			got, st, err := e.Suggest(prefix, k)
			if err != nil {
				t.Fatalf("%s: Suggest(%q, %d): %v", stage, prefix, k, err)
			}
			want := suggest.ScanTopK(tries, prefix, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Suggest(%q, %d) = %v, brute force = %v", stage, prefix, k, got, want)
			}
			if st.Prefix != prefix {
				t.Fatalf("%s: normalized %q to %q (inputs are pre-normalized)", stage, prefix, st.Prefix)
			}
			if st.Terms <= 0 {
				t.Fatalf("%s: stats report %d dictionary terms", stage, st.Terms)
			}
		}
	}
}

// suggestSnapshot captures a full-dictionary completion for equality
// checks across operations that must not change suggestions.
func suggestSnapshot(t *testing.T, e *Engine) []Suggestion {
	t.Helper()
	got, _, err := e.Suggest("", 50)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSuggestDifferential(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			e := NewEngine(&Config{IndexDir: dir, Shards: shards})
			addCorpus(t, e, crashCorpus())
			if _, err := e.Build(); err != nil {
				t.Fatal(err)
			}
			checkSuggestDifferential(t, e, "after Build")

			// Incremental batch: a second segment with fresh terms.
			if err := e.AddDoc("extra.xml", strings.NewReader(
				`<book><title>ranked proximity keyword</title><p>xquery extension volume</p></book>`)); err != nil {
				t.Fatal(err)
			}
			if e.SegmentCount() != 2 {
				t.Fatalf("expected 2 segments, got %d", e.SegmentCount())
			}
			checkSuggestDifferential(t, e, "after AddDocs")

			// DeleteDoc must not move a single suggestion: tombstoned
			// documents keep contributing until a rebuild (Section 4.5
			// semantics; see suggest.go).
			before := suggestSnapshot(t, e)
			if err := e.DeleteDoc("doc2.xml"); err != nil {
				t.Fatal(err)
			}
			checkSuggestDifferential(t, e, "after DeleteDoc")
			if after := suggestSnapshot(t, e); !reflect.DeepEqual(before, after) {
				t.Fatalf("DeleteDoc moved suggestions: %v -> %v", before, after)
			}

			// Shadowing replace: another segment, old version tombstoned.
			if err := e.AddDoc("doc1.xml", strings.NewReader(
				`<book><title>replacement xml chapter</title></book>`)); err != nil {
				t.Fatal(err)
			}
			checkSuggestDifferential(t, e, "after shadowing AddDocs")

			// Reopen: the persisted tries must reproduce the in-memory
			// ones bit-for-bit.
			preReopen := suggestSnapshot(t, e)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			e, err := OpenEngine(dir)
			if err != nil {
				t.Fatal(err)
			}
			checkSuggestDifferential(t, e, "after reopen")
			if got := suggestSnapshot(t, e); !reflect.DeepEqual(got, preReopen) {
				t.Fatalf("reopen moved suggestions: %v -> %v", preReopen, got)
			}

			// Compaction rebuilds one merged dictionary at the current
			// rank version (weights may legitimately move — stale
			// segments' baked ranks are replaced — but trie-vs-scan
			// exactness and persistence must hold).
			if cs, err := e.CompactOnce(0); err != nil || !cs.Compacted {
				t.Fatalf("CompactOnce: %+v, %v", cs, err)
			}
			checkSuggestDifferential(t, e, "after CompactOnce")

			preReopen = suggestSnapshot(t, e)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			e, err = OpenEngine(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			checkSuggestDifferential(t, e, "after post-compaction reopen")
			if got := suggestSnapshot(t, e); !reflect.DeepEqual(got, preReopen) {
				t.Fatalf("post-compaction reopen moved suggestions: %v -> %v", preReopen, got)
			}
		})
	}
}

// TestSuggestNormalization checks the raw-input path: queries fold
// through the index tokenizer, so only the last token is completed and
// case folds identically to indexing.
func TestSuggestNormalization(t *testing.T) {
	e := NewEngine(&Config{IndexDir: t.TempDir()})
	addCorpus(t, e, crashCorpus())
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	lower, _, err := e.Suggest("key", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lower) == 0 {
		t.Fatal("no completions for 'key'")
	}
	upper, st, err := e.Suggest("ranked KEY", 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Prefix != "key" {
		t.Fatalf("normalized prefix = %q, want key", st.Prefix)
	}
	if !reflect.DeepEqual(lower, upper) {
		t.Fatalf("case folding diverged: %v vs %v", lower, upper)
	}
}

func TestSuggestDisabled(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(&Config{IndexDir: dir, SuggestDisabled: true})
	addCorpus(t, e, crashCorpus())
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Suggest("x", 5); !errors.Is(err, ErrSuggestDisabled) {
		t.Fatalf("Suggest on a disabled engine: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The persisted config keeps it disabled across reopen, and no
	// suggest.bin was ever written.
	re, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, _, err := re.Suggest("x", 5); !errors.Is(err, ErrSuggestDisabled) {
		t.Fatalf("Suggest after reopen: %v", err)
	}
}

// TestSuggestMissingArtifactCompat: a directory whose segments predate
// the suggest artifact (no suggest.bin) must open cleanly and simply
// contribute no completions.
func TestSuggestMissingArtifactCompat(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(&Config{IndexDir: dir})
	addCorpus(t, e, crashCorpus())
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.fs().Remove(dir + "/suggest.bin"); err != nil {
		t.Fatal(err)
	}
	re, err := OpenEngine(dir)
	if err != nil {
		t.Fatalf("open without suggest.bin: %v", err)
	}
	defer re.Close()
	got, st, err := re.Suggest("x", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || st.Terms != 0 {
		t.Fatalf("pre-suggest layout produced completions: %v (terms=%d)", got, st.Terms)
	}
	if re.SuggestTerms() != 0 {
		t.Fatalf("SuggestTerms = %d", re.SuggestTerms())
	}
}

// TestSuggestMetrics checks the new xrank_suggest_* series move.
func TestSuggestMetrics(t *testing.T) {
	e := NewEngine(&Config{IndexDir: t.TempDir()})
	addCorpus(t, e, crashCorpus())
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, _, err := e.Suggest("x", 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Suggest("zzzmiss", 5); err != nil {
		t.Fatal(err)
	}
	if got := e.met.suggestQueries.Value(); got != 2 {
		t.Fatalf("suggest queries counter = %d, want 2", got)
	}
	if got := e.met.suggestEmpty.Value(); got != 1 {
		t.Fatalf("suggest empty counter = %d, want 1", got)
	}
	if got := e.met.suggestNodes.Value(); got <= 0 {
		t.Fatalf("suggest nodes counter = %d", got)
	}
	if got := e.met.suggestTerms.Value(); got <= 0 || got != int64(e.SuggestTerms()) {
		t.Fatalf("suggest terms gauge = %d, SuggestTerms = %d", got, e.SuggestTerms())
	}
}
