package xrank

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// FuzzOpenCorrupt mutates one persisted file per input — a bit flip at
// an arbitrary offset or a truncation to an arbitrary length — and
// asserts OpenEngine (which verifies every artifact, including the
// sharded index underneath) never panics and never opens silently
// wrong: either it reports an error, or — for mutations outside any
// checksummed payload, e.g. whitespace inside a manifest envelope —
// the opened engine is observably identical to the pristine one. The
// pristine bytes are restored after each case so the shared directory
// stays valid. The engine uses the block postings format, so the walked
// file set includes the per-term skip indexes (dil.skip, rdil.skip,
// hdilrank.skip) — a corrupted skip index must be rejected at open, never
// silently steer queries into the wrong blocks.
func FuzzOpenCorrupt(f *testing.F) {
	dir := f.TempDir()
	e := NewEngine(&Config{IndexDir: dir, Shards: 2, BlockPostings: true})
	docs := map[string]string{
		"a.xml": `<r><t>xml keyword search</t><p>fuzzable content one</p></r>`,
		"b.xml": `<r><t>ranked retrieval</t><p>fuzzable content two</p></r>`,
		"c.xml": `<r><t>xml query language</t></r>`,
	}
	names := []string{"a.xml", "b.xml", "c.xml"}
	for _, n := range names {
		if err := e.AddXML(n, bytes.NewReader([]byte(docs[n]))); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		f.Fatal(err)
	}
	want, err := e.Search("xml search")
	if err != nil || len(want) == 0 {
		f.Fatalf("reference query: %v results, %v", len(want), err)
	}
	e.Close()

	var files []string
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		files = append(files, rel)
		return nil
	})
	if err != nil {
		f.Fatal(err)
	}
	sort.Strings(files)
	if len(files) < 10 {
		f.Fatalf("only %d persisted files found", len(files))
	}

	// Seed every file with one flip and one truncation.
	for i := range files {
		f.Add(uint32(i), uint32(3), byte(0x40), false)
		f.Add(uint32(i), uint32(7), byte(0x01), true)
	}

	f.Fuzz(func(t *testing.T, fileIdx, off uint32, mask byte, truncate bool) {
		rel := files[int(fileIdx)%len(files)]
		path := filepath.Join(dir, rel)
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := os.WriteFile(path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
		}()
		if len(pristine) == 0 {
			t.Skip("empty file")
		}
		var mut []byte
		if truncate {
			mut = pristine[:int(off)%len(pristine)]
		} else {
			if mask == 0 {
				t.Skip("identity flip")
			}
			mut = append([]byte{}, pristine...)
			mut[int(off)%len(mut)] ^= mask
		}
		if bytes.Equal(mut, pristine) {
			t.Skip("mutation is a no-op")
		}
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenEngine(dir)
		if err != nil {
			return // rejected, as a checksum-covered mutation must be
		}
		got, qerr := re.Search("xml search")
		re.Close()
		if qerr != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("OpenEngine silently opened a DIFFERENT engine over mutated %s (truncate=%v off=%d mask=%#x): %v",
				rel, truncate, off, mask, qerr)
		}
	})
}
