package xrank

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xrank/internal/query"
)

// TestBlockPruningSoundness is the property test behind block-max
// pruning: every time the threshold algorithm abandons a ranked list
// (query.DebugBlockSkip fires), each block about to be skipped is
// decoded out-of-band and checked against the three facts that make the
// skip exact:
//
//  1. the skip ref's MaxRank upper-bounds the block's true maximum rank
//     (the summary never under-reports, so pruning on it is safe),
//  2. MaxRank is bounded by the last rank consumed from the list (the
//     list really is rank-descending, so everything unread is dominated),
//  3. the stop threshold is at or below the current k-th score (the
//     stopping rule itself held when the skip was taken).
//
// Together these prove no skipped block can contain an entry that would
// change the top-m. The corpus is sized so every keyword's list spans
// several blocks, and the test fails if the hook never fires or never
// sees an unread block — a vacuous pass is a failure.
func TestBlockPruningSoundness(t *testing.T) {
	e := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2, BlockPostings: true})
	defer e.Close()

	// ~600 docs, every one holding alpha and beta at varying depths so the
	// rank-ordered lists descend through plateaus instead of one flat run.
	for i := 0; i < 600; i++ {
		depth := i % 5
		inner := fmt.Sprintf("<p>alpha beta filler%d</p>", i)
		for d := 0; d < depth; d++ {
			inner = "<sec>" + inner + "</sec>"
		}
		name := fmt.Sprintf("doc%03d.xml", i)
		if err := e.AddXML(name, strings.NewReader("<r>"+inner+"</r>")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}

	var (
		mu        sync.Mutex
		calls     int
		refsSeen  int
		violation string
	)
	query.DebugBlockSkip = func(info query.BlockSkipInfo) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if violation != "" {
			return
		}
		if info.Threshold > info.KthScore {
			violation = fmt.Sprintf("stop taken with threshold %g above kth score %g",
				info.Threshold, info.KthScore)
			return
		}
		for _, ref := range info.Cursor.RemainingBlockRefs() {
			refsSeen++
			trueMax, err := info.Cursor.DecodeBlockMaxRank(ref)
			if err != nil {
				violation = fmt.Sprintf("decoding a skipped block: %v", err)
				return
			}
			if trueMax > ref.MaxRank {
				violation = fmt.Sprintf("skip ref under-reports: summary MaxRank %g, true max %g",
					ref.MaxRank, trueMax)
				return
			}
			if float64(ref.MaxRank) > info.LastRank {
				violation = fmt.Sprintf("source %d not rank-descending: skipped block MaxRank %g above last consumed rank %g",
					info.Source, ref.MaxRank, info.LastRank)
				return
			}
		}
	}
	defer func() { query.DebugBlockSkip = nil }()

	queries := []struct {
		q    string
		algo Algorithm
	}{
		{"alpha", AlgoRDIL},        // single-keyword top-m cutoff
		{"alpha beta", AlgoRDIL},   // threshold-algorithm stop
		{"alpha beta", AlgoHDIL},   // same stop through the hybrid
		{"beta filler1", AlgoRDIL}, // skewed list lengths
	}
	for _, qc := range queries {
		res, st, err := e.SearchDetailed(qc.q, SearchOptions{Algorithm: qc.algo, TopM: 5})
		if err != nil {
			t.Fatalf("%q: %v", qc.q, err)
		}
		if len(res) == 0 {
			t.Fatalf("%q returned no results", qc.q)
		}
		if st.IO.BlocksDecoded == 0 {
			t.Fatalf("%q decoded no blocks on a block-format index", qc.q)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if violation != "" {
		t.Fatal(violation)
	}
	if calls == 0 {
		t.Fatal("DebugBlockSkip never fired; the queries exercised no pruning")
	}
	if refsSeen == 0 {
		t.Fatal("no skipped block was audited; every list was read to the end")
	}
	t.Logf("audited %d skipped blocks across %d pruning stops", refsSeen, calls)
}
