package xrank

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"xrank/internal/index"
	"xrank/internal/storage"
)

// Degraded-mode tests: inject device read faults into one shard and
// check that queries retry transient faults, exclude persistently
// failing shards, report the degradation, and honor FailOnDegraded.

// degradedCorpus gives every document the shared term "common" so every
// populated shard participates (and therefore reads) in the test query.
func degradedCorpus(n int) map[string]string {
	docs := make(map[string]string)
	for i := 0; i < n; i++ {
		docs[fmt.Sprintf("doc%d.xml", i)] = fmt.Sprintf(
			`<r><t>common shared term</t><p>unique token%d text</p></r>`, i)
	}
	return docs
}

// buildDegradedEngine builds a sharded engine over ffs and returns it
// plus the shard holding document 0 (guaranteed populated, so failing
// it is guaranteed to degrade the test query).
func buildDegradedEngine(t *testing.T, ffs *storage.FaultFS, shards int) (*Engine, int) {
	t.Helper()
	e := NewEngine(&Config{
		IndexDir:                t.TempDir(),
		Shards:                  shards,
		FS:                      ffs,
		ShardRetryBackoffMillis: 1, // keep retry waits out of test time
	})
	addCorpus(t, e, degradedCorpus(8))
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	fail := index.ShardOf(0, shards)
	other := false
	for d := 0; d < 8; d++ {
		if index.ShardOf(uint32(d), shards) != fail {
			other = true
		}
	}
	if !other {
		t.Fatalf("all 8 documents hash to shard %d; the corpus cannot exercise degradation", fail)
	}
	return e, fail
}

// shardPred matches any path inside the given shard's directory.
func shardPred(s int) func(string) bool {
	name := fmt.Sprintf("shard%03d", s)
	return func(path string) bool { return strings.Contains(path, name) }
}

func TestDegradedQueryServing(t *testing.T) {
	ffs := storage.NewFaultFS(nil, 21)
	e, fail := buildDegradedEngine(t, ffs, 3)

	full, stats, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err != nil || stats.Degraded || len(full) == 0 {
		t.Fatalf("healthy query: %d results, degraded=%v, err=%v", len(full), stats.Degraded, err)
	}

	// Permanently fail every device read inside one shard.
	ffs.FailReads(shardPred(fail), storage.ErrInjected, -1)
	if err := e.ColdCache(); err != nil {
		t.Fatal(err)
	}

	res, stats, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	if !stats.Degraded || len(stats.FailedShards) != 1 || stats.FailedShards[0] != fail {
		t.Fatalf("degraded=%v failed=%v, want degraded over shard %d", stats.Degraded, stats.FailedShards, fail)
	}
	if stats.Retries == 0 {
		t.Fatal("a transiently-modeled fault was never retried")
	}
	if len(res) == 0 {
		t.Fatal("degraded query returned no results from the healthy shards")
	}
	// Shard-invariant scoring: every degraded result must appear in the
	// full result set with a bit-identical score.
	fullScores := make(map[string]float64, len(full))
	for _, r := range full {
		fullScores[r.DeweyID] = r.Score
	}
	for _, r := range res {
		if s, ok := fullScores[r.DeweyID]; !ok || s != r.Score {
			t.Fatalf("degraded result %s score %v not in the healthy top-k (%v)", r.DeweyID, r.Score, s)
		}
	}

	// Default threshold is 3 consecutive post-retry failures: two more
	// degraded queries mark the shard unhealthy.
	for i := 0; i < 2; i++ {
		if _, _, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL}); err != nil {
			t.Fatal(err)
		}
	}
	h := e.ShardHealth()
	if h == nil || h[fail].Healthy || h[fail].Failures < 3 {
		t.Fatalf("after 3 failures: health[%d] = %+v, want unhealthy", fail, h[fail])
	}
	for s, sh := range h {
		if s != fail && !sh.Healthy {
			t.Fatalf("healthy shard %d got marked unhealthy: %+v", s, sh)
		}
	}

	// An unhealthy shard is skipped up front: the query stays degraded
	// but spends no retries on the dead device.
	_, stats, err = e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err != nil || !stats.Degraded {
		t.Fatalf("post-unhealthy query: degraded=%v err=%v", stats != nil && stats.Degraded, err)
	}
	if stats.Retries != 0 {
		t.Fatalf("skipped shard still consumed %d retries", stats.Retries)
	}

	// Strict mode: FailOnDegraded turns the partial answer into an error.
	e.SetFailOnDegraded(true)
	if _, _, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("FailOnDegraded: %v, want ErrDegraded", err)
	}
	e.SetFailOnDegraded(false)

	// Operator recovery: clear the faults, reset health, full service.
	ffs.FailReads(nil, nil, 0)
	e.ResetShardHealth()
	res, stats, err = e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err != nil || stats.Degraded {
		t.Fatalf("after recovery: degraded=%v err=%v", stats != nil && stats.Degraded, err)
	}
	if len(res) != len(full) {
		t.Fatalf("after recovery: %d results, want %d", len(res), len(full))
	}
}

// TestTransientFaultRetried: a fault that clears within the retry
// budget must not degrade the query at all.
func TestTransientFaultRetried(t *testing.T) {
	ffs := storage.NewFaultFS(nil, 22)
	e, fail := buildDegradedEngine(t, ffs, 3)

	full, _, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailReads(shardPred(fail), storage.ErrInjected, 1) // exactly one read fails
	if err := e.ColdCache(); err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err != nil {
		t.Fatalf("query with one transient fault: %v", err)
	}
	if stats.Degraded {
		t.Fatalf("transient fault degraded the query: %+v", stats.FailedShards)
	}
	if stats.Retries == 0 {
		t.Fatal("the transient fault was absorbed without a recorded retry")
	}
	if len(res) != len(full) {
		t.Fatalf("%d results after retry, want %d", len(res), len(full))
	}
	if h := e.ShardHealth(); !h[fail].Healthy || h[fail].Failures != 0 {
		t.Fatalf("a recovered shard kept failure state: %+v", h[fail])
	}
}

// TestFlatIndexFaultIsFatal: a single-shard index has nothing to
// degrade to — device faults surface as errors (after retries), with
// health recorded for observability.
func TestFlatIndexFaultIsFatal(t *testing.T) {
	ffs := storage.NewFaultFS(nil, 23)
	e := NewEngine(&Config{
		IndexDir:                t.TempDir(),
		FS:                      ffs,
		ShardRetryBackoffMillis: 1,
	})
	addCorpus(t, e, degradedCorpus(4))
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ffs.FailReads(nil, storage.ErrInjected, -1)
	if err := e.ColdCache(); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.SearchDetailed("common", SearchOptions{Algorithm: AlgoDIL})
	if err == nil {
		t.Fatal("flat-index device fault was swallowed")
	}
	if !errors.Is(err, storage.ErrIO) {
		t.Fatalf("flat-index fault: %v, want an ErrIO-classified device error", err)
	}
	if h := e.ShardHealth(); len(h) != 1 || h[0].Failures == 0 {
		t.Fatalf("flat shard health not recorded: %+v", h)
	}
}
