package xrank

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/storage"
)

// Crash matrices for the block postings format: Build, AddDocs and
// CompactOnce gain new write boundaries (the per-term skip indexes
// dil.skip / rdil.skip / hdilrank.skip, written between the postings
// files and the lexicons), and a crash at any of them must leave the
// directory either refusing to open or opening bit-identical to one side
// of the operation — never serving from a skip index that disagrees with
// its postings.

// TestCrashMatrixBlockBuild is TestCrashMatrixBuild over the block
// postings format: a fresh v2 Build killed at every write boundary.
func TestCrashMatrixBlockBuild(t *testing.T) {
	docs := crashCorpus()

	ref := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2, BlockPostings: true})
	addCorpus(t, ref, docs)
	if _, err := ref.Build(); err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := crashSig(t, ref)

	sizing := storage.NewFaultFS(nil, 31)
	se := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2, BlockPostings: true, FS: sizing})
	addCorpus(t, se, docs)
	if _, err := se.Build(); err != nil {
		t.Fatal(err)
	}
	if got := crashSig(t, se); !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free FaultFS block build differs from the plain block build")
	}
	se.Close()
	n := sizing.WriteOps()
	if n < 20 {
		t.Fatalf("block build counted only %d write boundaries", n)
	}

	for k := int64(1); k <= n; k += crashStride(n, t) {
		dir := t.TempDir()
		ffs := storage.NewFaultFS(nil, 31+k)
		ffs.CrashAtWriteOp(k)
		e := NewEngine(&Config{IndexDir: dir, Shards: 2, BlockPostings: true, FS: ffs})
		addCorpus(t, e, docs)
		if _, err := e.Build(); err == nil {
			t.Fatalf("crash at op %d/%d: Build reported success", k, n)
		}
		re, err := OpenEngine(dir)
		if err != nil {
			continue // pre-state: the directory never committed
		}
		got := crashSig(t, re)
		re.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("crash at op %d/%d: reopened block index differs from the clean build", k, n)
		}
	}
}

// TestCrashMatrixBlockSegments kills a v2 delta-segment flush (AddDocs)
// and then a v2 compaction at every write boundary — the segmented
// layout's two commit points, each now also writing skip indexes.
func TestCrashMatrixBlockSegments(t *testing.T) {
	docs := crashCorpus()

	pristine := t.TempDir()
	b := NewEngine(&Config{IndexDir: pristine, Shards: 2, BlockPostings: true})
	addCorpus(t, b, docs)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	preSig := crashSig(t, b)
	b.Close()

	// Clean post-states: one AddDocs (two segments), then its compaction
	// (one segment, score-neutral).
	postDir := filepath.Join(t.TempDir(), "post")
	copyDir(t, pristine, postDir)
	pe, err := OpenEngine(postDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.AddDoc("doc7.xml", strings.NewReader(segCrashDoc)); err != nil {
		t.Fatal(err)
	}
	postSig := crashSig(t, pe)
	pe.Close()
	if reflect.DeepEqual(preSig, postSig) {
		t.Fatal("adding doc7 does not change any signature query; the matrix would prove nothing")
	}

	szDir := filepath.Join(t.TempDir(), "sz")
	copyDir(t, pristine, szDir)
	sizing := storage.NewFaultFS(nil, 37)
	se, err := OpenEngineFS(szDir, sizing)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.AddDoc("doc7.xml", strings.NewReader(segCrashDoc)); err != nil {
		t.Fatal(err)
	}
	nAdd := sizing.WriteOps()
	if cs, err := se.CompactOnce(0); err != nil || !cs.Compacted {
		t.Fatalf("fault-free block compaction: %+v, %v", cs, err)
	}
	if got := crashSig(t, se); !reflect.DeepEqual(got, postSig) {
		t.Fatal("fault-free FaultFS AddDocs+compaction changed scores")
	}
	se.Close()
	nCompact := sizing.WriteOps() - nAdd
	if nAdd < 10 || nCompact < 10 {
		t.Fatalf("sizing counted only %d AddDocs / %d compaction boundaries", nAdd, nCompact)
	}

	for k := int64(1); k <= nAdd; k += crashStride(nAdd, t) {
		dirK := filepath.Join(t.TempDir(), "k")
		copyDir(t, pristine, dirK)
		ffs := storage.NewFaultFS(nil, 37+k)
		e, err := OpenEngineFS(dirK, ffs)
		if err != nil {
			t.Fatalf("crash replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		aerr := e.AddDoc("doc7.xml", strings.NewReader(segCrashDoc))
		e.Close()

		re, err := OpenEngine(dirK)
		if err != nil {
			t.Fatalf("crash at op %d/%d left the directory unopenable: %v", k, nAdd, err)
		}
		got := crashSig(t, re)
		segs := re.SegmentCount()
		re.Close()
		switch {
		case segs == 1 && reflect.DeepEqual(got, preSig):
			if aerr == nil {
				t.Fatalf("crash at op %d/%d: AddDocs claimed success but the reopen shows the old state", k, nAdd)
			}
		case segs == 2 && reflect.DeepEqual(got, postSig):
			// New state; either op outcome is acceptable (see segment_crash_test.go).
		default:
			t.Fatalf("crash at op %d/%d: third state (segments=%d, op err=%v)", k, nAdd, segs, aerr)
		}
	}

	// Compaction matrix, replayed from a two-segment pristine copy.
	twoSeg := filepath.Join(t.TempDir(), "two")
	copyDir(t, pristine, twoSeg)
	te, err := OpenEngine(twoSeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := te.AddDoc("doc7.xml", strings.NewReader(segCrashDoc)); err != nil {
		t.Fatal(err)
	}
	te.Close()

	for k := int64(1); k <= nCompact; k += crashStride(nCompact, t) {
		dirK := filepath.Join(t.TempDir(), "ck")
		copyDir(t, twoSeg, dirK)
		ffs := storage.NewFaultFS(nil, 41+k)
		e, err := OpenEngineFS(dirK, ffs)
		if err != nil {
			t.Fatalf("compaction replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		_, cerr := e.CompactOnce(0)
		e.Close()

		re, err := OpenEngine(dirK)
		if err != nil {
			t.Fatalf("compaction crash at op %d/%d left the directory unopenable: %v", k, nCompact, err)
		}
		got := crashSig(t, re)
		segs := re.SegmentCount()
		re.Close()
		if !reflect.DeepEqual(got, postSig) {
			t.Fatalf("compaction crash at op %d/%d changed scores", k, nCompact)
		}
		if segs != 1 && segs != 2 {
			t.Fatalf("compaction crash at op %d/%d: third state with %d segments", k, nCompact, segs)
		}
		if cerr == nil && segs != 1 {
			t.Fatalf("compaction crash at op %d/%d: CompactOnce claimed success but the old manifest survived", k, nCompact)
		}
	}
}
