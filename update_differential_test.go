package xrank

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// The incremental-update differential harness: a random sequence of
// Update (rebuild with additions) and DeleteDoc (tombstone) operations
// must leave the engine equivalent to one built from scratch over the
// same live document set.
//
//   - After every Update, the rebuilt engine must match a from-scratch
//     engine exactly — same results in the same order with scores equal
//     to 1e-9 — under every algorithm. Update feeds the from-scratch
//     engine's document order: live documents in manifest order, then
//     additions sorted by name.
//   - After a DeleteDoc without a rebuild, exact score equality is NOT
//     expected (tombstoned documents still contribute ElemRank through
//     their links until the next rebuild, just as Section 4.5's
//     tombstones defer space reclamation); the harness asserts the
//     tombstoned documents' elements vanish from results immediately.

// diffVocab is the shared query vocabulary; every generated document
// draws from it so conjunctive queries span documents.
var diffVocab = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}

// diffDoc generates a small deterministic document: a few sections each
// holding vocabulary words plus a doc-unique marker, with one cite link
// so the ElemRank graph has edges.
func diffDoc(rng *rand.Rand, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<doc id=\"%d\"><title>%s doc%d</title>", n, diffVocab[n%len(diffVocab)], n)
	sections := 2 + rng.Intn(3)
	for s := 0; s < sections; s++ {
		words := make([]string, 0, 4)
		for w := 0; w < 2+rng.Intn(3); w++ {
			words = append(words, diffVocab[rng.Intn(len(diffVocab))])
		}
		words = append(words, fmt.Sprintf("uniq%d", n))
		fmt.Fprintf(&b, "<section name=\"s%d\"><p>%s</p></section>", s, strings.Join(words, " "))
	}
	fmt.Fprintf(&b, "<cite ref=\"%d\">%s</cite></doc>", rng.Intn(n+1), diffVocab[rng.Intn(len(diffVocab))])
	b.WriteString("")
	return b.String()
}

var diffQueries = []string{
	"alpha beta",
	"gamma delta",
	"alpha epsilon zeta",
	"beta",
}

// diffAlgos covers every conjunctive processor plus disjunctive
// semantics.
var diffAlgos = []SearchOptions{
	{Algorithm: AlgoDIL},
	{Algorithm: AlgoRDIL},
	{Algorithm: AlgoHDIL},
	{Algorithm: AlgoNaiveID},
	{Algorithm: AlgoNaiveRank},
	{Disjunctive: true},
}

func searchLabel(o SearchOptions) string {
	if o.Disjunctive {
		return "Disjunctive"
	}
	return o.Algorithm.String()
}

// assertEnginesAgree compares the two engines result-for-result over the
// differential query/algorithm matrix.
func assertEnginesAgree(t *testing.T, tag string, a, b *Engine) {
	t.Helper()
	for _, q := range diffQueries {
		for _, algo := range diffAlgos {
			opts := algo
			opts.TopM = 25
			ra, _, errA := a.SearchDetailed(q, opts)
			rb, _, errB := b.SearchDetailed(q, opts)
			if errA != nil || errB != nil {
				t.Fatalf("%s %s %q: errs %v / %v", tag, searchLabel(algo), q, errA, errB)
			}
			if len(ra) != len(rb) {
				t.Fatalf("%s %s %q: %d results vs %d from scratch", tag, searchLabel(algo), q, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i].DeweyID != rb[i].DeweyID || ra[i].Doc != rb[i].Doc {
					t.Fatalf("%s %s %q result %d: %s@%s vs %s@%s",
						tag, searchLabel(algo), q, i, ra[i].DeweyID, ra[i].Doc, rb[i].DeweyID, rb[i].Doc)
				}
				if math.Abs(ra[i].Score-rb[i].Score) > 1e-9 {
					t.Fatalf("%s %s %q result %d (%s): score %v vs %v",
						tag, searchLabel(algo), q, i, ra[i].DeweyID, ra[i].Score, rb[i].Score)
				}
			}
		}
	}
}

// assertDocsAbsent checks that no result resolves into a tombstoned
// document.
func assertDocsAbsent(t *testing.T, tag string, e *Engine, gone map[string]bool) {
	t.Helper()
	if len(gone) == 0 {
		return
	}
	for _, q := range diffQueries {
		for _, algo := range diffAlgos {
			opts := algo
			opts.TopM = 25
			rs, _, err := e.SearchDetailed(q, opts)
			if err != nil {
				t.Fatalf("%s %s %q: %v", tag, searchLabel(algo), q, err)
			}
			for _, r := range rs {
				if gone[r.Doc] {
					t.Fatalf("%s %s %q: tombstoned document %s still in results", tag, searchLabel(algo), q, r.Doc)
				}
			}
		}
	}
}

func TestUpdateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20030609)) // SIGMOD 2003

	// The document pool; documents enter the engine over the rounds.
	pool := make(map[string]string)
	for n := 0; n < 12; n++ {
		pool[fmt.Sprintf("doc%02d", n)] = diffDoc(rng, n)
	}

	base := t.TempDir()
	buildScratch := func(dir string, docs []string) *Engine {
		e := NewEngine(&Config{IndexDir: dir})
		for _, name := range docs {
			if err := e.AddXML(name, strings.NewReader(pool[name])); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Build(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}

	// Round 0: initial build over the first four documents.
	live := []string{"doc00", "doc01", "doc02", "doc03"}
	next := 4
	cur := buildScratch(filepath.Join(base, "r0"), live)

	deleted := map[string]bool{}
	for round := 1; round <= 3; round++ {
		// Tombstone one random live document.
		victim := live[rng.Intn(len(live))]
		if err := cur.DeleteDoc(victim); err != nil {
			t.Fatal(err)
		}
		deleted[victim] = true
		assertDocsAbsent(t, fmt.Sprintf("round %d post-delete", round), cur, deleted)

		// Fold the tombstone in and add one or two new documents via Update.
		add := map[string]string{}
		for i := 0; i < 1+rng.Intn(2) && next < 12; i++ {
			name := fmt.Sprintf("doc%02d", next)
			add[name] = pool[name]
			next++
		}
		// Update's document order: live docs in manifest order, then
		// additions sorted by name (here: doc numbers ascend).
		newLive := make([]string, 0, len(live)+len(add))
		for _, n := range live {
			if !deleted[n] {
				newLive = append(newLive, n)
			}
		}
		addNames := make([]string, 0, len(add))
		for n := range add {
			addNames = append(addNames, n)
		}
		for i := range addNames {
			for j := i + 1; j < len(addNames); j++ {
				if addNames[j] < addNames[i] {
					addNames[i], addNames[j] = addNames[j], addNames[i]
				}
			}
		}
		newLive = append(newLive, addNames...)

		addReaders := make(map[string]io.Reader, len(add))
		for n, x := range add {
			addReaders[n] = strings.NewReader(x)
		}
		updated, err := cur.Update(filepath.Join(base, fmt.Sprintf("r%d", round)), addReaders)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { updated.Close() })

		scratch := buildScratch(filepath.Join(base, fmt.Sprintf("r%d-scratch", round)), newLive)
		assertEnginesAgree(t, fmt.Sprintf("round %d post-update", round), updated, scratch)

		cur = updated
		live = newLive
		deleted = map[string]bool{}
	}
}
