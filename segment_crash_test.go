package xrank

import (
	iofs "io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/storage"
)

// Crash matrices for the segmented layout's two new commit boundaries:
// the delta-segment flush (AddDocs) and the compaction swap, both of
// which commit by atomically replacing segments.json. Unlike DeleteDoc's
// single-file manifest rewrite, these mutate the index directory in
// place, so each replay starts from a pristine recursive copy.
//
// One asymmetry with the older matrices: both operations end with
// best-effort retirement (the superseded ranks blob, the merged-away
// segments' files) AFTER the commit point. A crash landing there leaves
// the operation reporting success — or, for a failed parent-directory
// fsync just after the rename, reporting failure with the manifest
// already durable. The matrices therefore accept either op outcome and
// pin the real invariant: a reopen sees exactly the old state or the new
// state, never a third, and success implies the new state.

// copyDir recursively copies a committed index directory so a crash
// replay can mutate it destructively.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

const segCrashDoc = `<book id="7"><title>incremental xml search addition</title>
 <chapter><t>keyword retrieval appendix</t><p>the xql language appendix</p></chapter>
 <cite ref="2">see also</cite></book>`

// TestCrashMatrixAddDocs kills the delta-segment flush at every write
// boundary: document-store files, the versioned ranks blob, the segment
// index files, and the segments.json swap itself.
func TestCrashMatrixAddDocs(t *testing.T) {
	docs := crashCorpus()

	pristine := t.TempDir()
	b := NewEngine(&Config{IndexDir: pristine, Shards: 2})
	addCorpus(t, b, docs)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	preSig := crashSig(t, b)
	b.Close()

	// Clean post-state on a copy, round-tripped through a reopen so the
	// reference signature is what the crash replays' reopens must match.
	postDir := filepath.Join(t.TempDir(), "post")
	copyDir(t, pristine, postDir)
	pe, err := OpenEngine(postDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.AddDoc("doc7.xml", strings.NewReader(segCrashDoc)); err != nil {
		t.Fatal(err)
	}
	pe.Close()
	pe, err = OpenEngine(postDir)
	if err != nil {
		t.Fatalf("reopen after clean AddDocs: %v", err)
	}
	if got := pe.SegmentCount(); got != 2 {
		t.Fatalf("clean AddDocs reopened with %d segments, want 2", got)
	}
	postSig := crashSig(t, pe)
	pe.Close()
	if reflect.DeepEqual(preSig, postSig) {
		t.Fatal("adding doc7 does not change any signature query; the matrix would prove nothing")
	}

	// Sizing run: the same batch through a fault-free FaultFS.
	szDir := filepath.Join(t.TempDir(), "sz")
	copyDir(t, pristine, szDir)
	sizing := storage.NewFaultFS(nil, 11)
	se, err := OpenEngineFS(szDir, sizing)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.AddDoc("doc7.xml", strings.NewReader(segCrashDoc)); err != nil {
		t.Fatal(err)
	}
	if got := crashSig(t, se); !reflect.DeepEqual(got, postSig) {
		t.Fatal("fault-free FaultFS AddDocs differs from the plain AddDocs")
	}
	se.Close()
	n := sizing.WriteOps()
	if n < 10 {
		t.Fatalf("AddDocs counted only %d write boundaries", n)
	}

	for k := int64(1); k <= n; k += crashStride(n, t) {
		dirK := filepath.Join(t.TempDir(), "k")
		copyDir(t, pristine, dirK)
		ffs := storage.NewFaultFS(nil, 11+k)
		e, err := OpenEngineFS(dirK, ffs)
		if err != nil {
			t.Fatalf("crash replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		aerr := e.AddDoc("doc7.xml", strings.NewReader(segCrashDoc))
		e.Close()

		re, err := OpenEngine(dirK)
		if err != nil {
			// The pre-state was fully committed before the crash armed, so
			// the directory must never become unopenable.
			t.Fatalf("crash at op %d/%d left the directory unopenable: %v", k, n, err)
		}
		got := crashSig(t, re)
		segs := re.SegmentCount()
		re.Close()
		switch {
		case segs == 1 && reflect.DeepEqual(got, preSig):
			if aerr == nil {
				t.Fatalf("crash at op %d/%d: AddDocs claimed success but the reopen shows the old state", k, n)
			}
		case segs == 2 && reflect.DeepEqual(got, postSig):
			// New state; the op may have reported either outcome (the crash
			// can land in post-commit retirement or the final dir fsync).
		default:
			t.Fatalf("crash at op %d/%d: third state (segments=%d, op err=%v)", k, n, segs, aerr)
		}
	}
}

// TestCrashMatrixCompact kills the compaction — merged-segment build,
// manifest swap, old-segment retirement — at every write boundary.
// Compaction is score-neutral, so both sides of the boundary share one
// signature; the state is distinguished by the segment count, and the
// directory must open cleanly at every k.
func TestCrashMatrixCompact(t *testing.T) {
	docs := crashCorpus()

	pristine := t.TempDir()
	b := NewEngine(&Config{IndexDir: pristine, Shards: 2})
	addCorpus(t, b, docs)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	// A clean AddDocs gives the pristine directory two segments to merge.
	if err := b.AddDoc("doc7.xml", strings.NewReader(segCrashDoc)); err != nil {
		t.Fatal(err)
	}
	want := crashSig(t, b)
	b.Close()

	// Clean compaction on a copy must keep scores bit-identical and
	// survive a reopen as a single segment.
	cDir := filepath.Join(t.TempDir(), "clean")
	copyDir(t, pristine, cDir)
	ce, err := OpenEngine(cDir)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ce.CompactOnce(0)
	if err != nil || !cs.Compacted {
		t.Fatalf("clean compaction: %+v, %v", cs, err)
	}
	if got := crashSig(t, ce); !reflect.DeepEqual(got, want) {
		t.Fatal("compaction changed query scores; it must be score-neutral")
	}
	ce.Close()
	ce, err = OpenEngine(cDir)
	if err != nil {
		t.Fatalf("reopen after clean compaction: %v", err)
	}
	if got := ce.SegmentCount(); got != 1 {
		t.Fatalf("clean compaction reopened with %d segments", got)
	}
	if got := crashSig(t, ce); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened compacted index differs from the pre-compaction engine")
	}
	ce.Close()

	szDir := filepath.Join(t.TempDir(), "sz")
	copyDir(t, pristine, szDir)
	sizing := storage.NewFaultFS(nil, 23)
	se, err := OpenEngineFS(szDir, sizing)
	if err != nil {
		t.Fatal(err)
	}
	if cs, err := se.CompactOnce(0); err != nil || !cs.Compacted {
		t.Fatalf("fault-free compaction: %+v, %v", cs, err)
	}
	if got := crashSig(t, se); !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free FaultFS compaction differs from the plain compaction")
	}
	se.Close()
	n := sizing.WriteOps()
	if n < 10 {
		t.Fatalf("compaction counted only %d write boundaries", n)
	}

	for k := int64(1); k <= n; k += crashStride(n, t) {
		dirK := filepath.Join(t.TempDir(), "k")
		copyDir(t, pristine, dirK)
		ffs := storage.NewFaultFS(nil, 23+k)
		e, err := OpenEngineFS(dirK, ffs)
		if err != nil {
			t.Fatalf("crash replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		_, cerr := e.CompactOnce(0)
		e.Close()

		re, err := OpenEngine(dirK)
		if err != nil {
			t.Fatalf("crash at op %d/%d left the directory unopenable: %v", k, n, err)
		}
		got := crashSig(t, re)
		segs := re.SegmentCount()
		re.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("crash at op %d/%d: reopened scores differ (compaction must be score-neutral)", k, n)
		}
		if segs != 1 && segs != 2 {
			t.Fatalf("crash at op %d/%d: third state with %d segments", k, n, segs)
		}
		if cerr == nil && segs != 1 {
			t.Fatalf("crash at op %d/%d: CompactOnce claimed success but the old manifest survived", k, n)
		}
	}
}
