module xrank

go 1.22
