package xrank

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"xrank/internal/index"
)

// Engine persistence. Build writes, next to the index files:
//
//	engine.json — config + document manifest
//	ranks.bin   — float64 ElemRanks by global element index
//	docs/       — the raw source documents
//
// OpenEngine reloads all three; parsing is deterministic, so the rebuilt
// in-memory collection has identical Dewey IDs and global indexes.

type engineManifest struct {
	Config Config     `json:"config"`
	Docs   []docEntry `json:"docs"`
}

func (e *Engine) persist(dir string) error {
	docsDir := filepath.Join(dir, "docs")
	if err := os.MkdirAll(docsDir, 0o755); err != nil {
		return err
	}
	for i := range e.docs {
		d := &e.docs[i]
		ext := ".xml"
		if d.HTML {
			ext = ".html"
		}
		d.File = fmt.Sprintf("%06d%s", i, ext)
		if err := os.WriteFile(filepath.Join(docsDir, d.File), d.raw, 0o644); err != nil {
			return err
		}
		d.raw = nil // the store owns the bytes now
	}

	if err := e.persistManifest(dir); err != nil {
		return err
	}

	rf, err := os.Create(filepath.Join(dir, "ranks.bin"))
	if err != nil {
		return err
	}
	buf := make([]byte, 8*len(e.ranks))
	for i, r := range e.ranks {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(r))
	}
	if _, err := rf.Write(buf); err != nil {
		rf.Close()
		return err
	}
	return rf.Close()
}

// persistManifest writes (or rewrites, after DeleteDoc) engine.json.
func (e *Engine) persistManifest(dir string) error {
	mf, err := os.Create(filepath.Join(dir, "engine.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(engineManifest{Config: e.cfg, Docs: e.docs}); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}

// OpenEngine reopens an engine previously built with IndexDir set (or a
// still-existing temporary directory). The source documents are reparsed
// from the directory's document store.
func OpenEngine(dir string) (*Engine, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "engine.json"))
	if err != nil {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
	}
	var man engineManifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("xrank: bad engine.json: %w", err)
	}
	man.Config.IndexDir = dir
	e := NewEngine(&man.Config)
	for _, d := range man.Docs {
		f, err := os.Open(filepath.Join(dir, "docs", d.File))
		if err != nil {
			return nil, err
		}
		if d.HTML {
			_, err = e.col.AddHTML(d.Name, f, nil)
		} else {
			_, err = e.col.AddXML(d.Name, f, nil)
		}
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	e.docs = man.Docs
	for _, d := range man.Docs {
		if d.Deleted {
			if e.deleted == nil {
				e.deleted = make(map[uint32]bool)
			}
			e.deleted[e.col.DocByName(d.Name).ID] = true
		}
	}

	rb, err := os.ReadFile(filepath.Join(dir, "ranks.bin"))
	if err != nil {
		return nil, err
	}
	if len(rb) != 8*e.col.NumElements() {
		return nil, fmt.Errorf("xrank: ranks.bin holds %d bytes for %d elements", len(rb), e.col.NumElements())
	}
	e.ranks = make([]float64, e.col.NumElements())
	for i := range e.ranks {
		e.ranks[i] = math.Float64frombits(binary.LittleEndian.Uint64(rb[i*8:]))
	}

	ix, err := index.OpenSharded(dir, index.OpenOptions{PoolPages: e.cfg.PoolPages})
	if err != nil {
		return nil, err
	}
	e.ix = ix
	e.built = true
	e.met.shards.Set(int64(ix.NumShards()))
	return e, nil
}
