package xrank

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"xrank/internal/index"
	"xrank/internal/storage"
)

// Engine persistence. Build writes, next to the index files:
//
//	engine.json — config + document manifest (checksummed envelope)
//	ranks.bin   — float64 ElemRanks by global element index (checksummed blob)
//	docs/       — the raw source documents (sizes/CRCs in the manifest)
//
// Everything goes through the atomic-write protocol (temp file → fsync →
// rename → parent-dir fsync), and engine.json — the open entry point — is
// written last, after the index, the document store and ranks.bin are all
// durable. A crash anywhere in Build therefore leaves either no
// engine.json (the directory doesn't open; the previous index directory,
// if any, is untouched) or a complete consistent one.
//
// OpenEngine reloads all three, verifying every checksum up front;
// parsing is deterministic, so the rebuilt in-memory collection has
// identical Dewey IDs and global indexes.

// ranksMagic identifies ranks.bin's blob type ("XRNK").
const ranksMagic = 0x584b4e52

type engineManifest struct {
	Config Config     `json:"config"`
	Docs   []docEntry `json:"docs"`
}

func (e *Engine) persist(dir string) error {
	fs := e.fs()
	docsDir := filepath.Join(dir, "docs")
	if err := fs.MkdirAll(docsDir); err != nil {
		return err
	}
	for i := range e.docs {
		d := &e.docs[i]
		ext := ".xml"
		if d.HTML {
			ext = ".html"
		}
		d.File = fmt.Sprintf("%06d%s", i, ext)
		if err := storage.WriteFileAtomic(fs, filepath.Join(docsDir, d.File), d.raw); err != nil {
			return err
		}
		d.Size = int64(len(d.raw))
		d.CRC32 = storage.Checksum(d.raw)
		d.raw = nil // the store owns the bytes now
	}

	if err := storage.WriteBlobAtomic(fs, filepath.Join(dir, ranksFile(0)), ranksMagic, encodeRanks(e.ranks)); err != nil {
		return err
	}

	// engine.json last: it is the commit point OpenEngine keys off.
	return e.persistManifest(dir)
}

// persistManifest writes (or atomically rewrites, after DeleteDoc)
// engine.json.
func (e *Engine) persistManifest(dir string) error {
	return storage.WriteManifestAtomic(e.fs(), filepath.Join(dir, "engine.json"),
		engineManifest{Config: e.cfg, Docs: e.docs})
}

// OpenEngine reopens an engine previously built with IndexDir set (or a
// still-existing temporary directory). The source documents are reparsed
// from the directory's document store. Every persisted artifact —
// manifest, ranks, documents, index files — is checksum-verified before
// use: a torn or corrupted directory fails with a precise
// "xrank: corrupt <file>" error rather than opening silently wrong.
func OpenEngine(dir string) (*Engine, error) {
	return OpenEngineFS(dir, nil)
}

// OpenEngineFS is OpenEngine reading through fs (nil means the real file
// system) — the seam the fault-injection and crash-recovery tests use.
func OpenEngineFS(dir string, fs storage.FS) (*Engine, error) {
	fs = storage.DefaultFS(fs)
	// segments.json supersedes engine.json's document list once the
	// engine has gone segmented (first AddDocs); its presence selects
	// the layout.
	if _, serr := fs.Stat(filepath.Join(dir, fileSegments)); serr == nil {
		return openSegmentedEngine(dir, fs)
	} else if !os.IsNotExist(serr) {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, serr)
	}
	var man engineManifest
	if err := storage.ReadManifest(fs, filepath.Join(dir, "engine.json"), &man); err != nil {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
	}
	man.Config.IndexDir = dir
	man.Config.FS = fs
	e := NewEngine(&man.Config)
	for _, d := range man.Docs {
		data, err := fs.ReadFile(filepath.Join(dir, "docs", d.File))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("xrank: %w engine.json: document store is missing %s (document %q)",
					storage.ErrCorrupt, d.File, d.Name)
			}
			return nil, fmt.Errorf("xrank: open document %s: %w", d.File, err)
		}
		if int64(len(data)) != d.Size || storage.Checksum(data) != d.CRC32 {
			return nil, fmt.Errorf("xrank: %w docs/%s: size %d crc %08x, manifest says size %d crc %08x",
				storage.ErrCorrupt, d.File, len(data), storage.Checksum(data), d.Size, d.CRC32)
		}
		if d.HTML {
			_, err = e.col.AddHTML(d.Name, bytes.NewReader(data), nil)
		} else {
			_, err = e.col.AddXML(d.Name, bytes.NewReader(data), nil)
		}
		if err != nil {
			return nil, fmt.Errorf("xrank: reparse %s: %w", d.File, err)
		}
	}
	e.docs = man.Docs
	for _, d := range man.Docs {
		if !d.Deleted {
			continue
		}
		doc := e.col.DocByName(d.Name)
		if doc == nil {
			// A hand-edited manifest can tombstone a name the store never
			// produced; surface that instead of dereferencing nil.
			return nil, fmt.Errorf("xrank: %w engine.json: deleted document %q is not in the collection",
				storage.ErrCorrupt, d.Name)
		}
		if e.deleted == nil {
			e.deleted = make(map[uint32]bool)
		}
		e.deleted[doc.ID] = true
	}

	rb, err := storage.ReadBlob(fs, filepath.Join(dir, "ranks.bin"), ranksMagic)
	if err != nil {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
	}
	if len(rb) != 8*e.col.NumElements() {
		return nil, fmt.Errorf("xrank: %w ranks.bin: %d payload bytes for %d elements",
			storage.ErrCorrupt, len(rb), e.col.NumElements())
	}
	e.ranks = make([]float64, e.col.NumElements())
	for i := range e.ranks {
		e.ranks[i] = math.Float64frombits(binary.LittleEndian.Uint64(rb[i*8:]))
	}

	ix, err := index.OpenSharded(dir, index.OpenOptions{PoolPages: e.cfg.PoolPages, FS: e.cfg.FS})
	if err != nil {
		return nil, err
	}
	var sug *suggestTrie
	if !e.cfg.SuggestDisabled {
		if sug, err = loadSegmentSuggest(fs, dir); err != nil {
			ix.Close()
			return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
		}
	}
	e.initBaseSegment(ix, sug)
	e.built = true
	e.met.shards.Set(int64(ix.NumShards()))
	return e, nil
}

// openSegmentedEngine reopens a directory whose commit point is
// segments.json: engine.json supplies only the Config (its document
// list froze at the last pre-segmentation write), while the segments
// manifest carries the authoritative document manifest, tombstones,
// rank version and segment set.
func openSegmentedEngine(dir string, fs storage.FS) (*Engine, error) {
	var man engineManifest
	if err := storage.ReadManifest(fs, filepath.Join(dir, "engine.json"), &man); err != nil {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
	}
	var sm segmentsManifest
	if err := storage.ReadManifest(fs, filepath.Join(dir, fileSegments), &sm); err != nil {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
	}
	if err := validateSegmentsManifest(&sm); err != nil {
		return nil, fmt.Errorf("xrank: %w %s: %v", storage.ErrCorrupt, fileSegments, err)
	}
	man.Config.IndexDir = dir
	man.Config.FS = fs
	e := NewEngine(&man.Config)
	// Reparse every document-store entry in manifest order — including
	// tombstoned and shadowed versions. Document IDs are positional, so
	// dropping a dead entry would renumber every later document and
	// desynchronize the collection from the segments' Dewey spaces.
	for i, d := range sm.Docs {
		data, err := fs.ReadFile(filepath.Join(dir, "docs", d.File))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, fmt.Errorf("xrank: %w %s: document store is missing %s (document %q)",
					storage.ErrCorrupt, fileSegments, d.File, d.Name)
			}
			return nil, fmt.Errorf("xrank: open document %s: %w", d.File, err)
		}
		if int64(len(data)) != d.Size || storage.Checksum(data) != d.CRC32 {
			return nil, fmt.Errorf("xrank: %w docs/%s: size %d crc %08x, manifest says size %d crc %08x",
				storage.ErrCorrupt, d.File, len(data), storage.Checksum(data), d.Size, d.CRC32)
		}
		if d.HTML {
			_, err = e.col.AddHTMLVersion(d.Name, bytes.NewReader(data), nil)
		} else {
			_, err = e.col.AddXMLVersion(d.Name, bytes.NewReader(data), nil)
		}
		if err != nil {
			return nil, fmt.Errorf("xrank: reparse %s: %w", d.File, err)
		}
		if d.Deleted {
			if e.deleted == nil {
				e.deleted = make(map[uint32]bool)
			}
			e.deleted[uint32(i)] = true
		}
	}
	e.docs = sm.Docs

	rb, err := storage.ReadBlob(fs, filepath.Join(dir, ranksFile(sm.RankVer)), ranksMagic)
	if err != nil {
		return nil, fmt.Errorf("xrank: open %s: %w", dir, err)
	}
	if len(rb) != 8*e.col.NumElements() {
		return nil, fmt.Errorf("xrank: %w %s: %d payload bytes for %d elements",
			storage.ErrCorrupt, ranksFile(sm.RankVer), len(rb), e.col.NumElements())
	}
	e.ranks = decodeRanks(rb)

	for _, se := range sm.Segments {
		segPath := dir
		if se.Dir != baseSegmentDir {
			segPath = filepath.Join(dir, se.Dir)
		}
		ix, err := index.OpenSharded(segPath, index.OpenOptions{PoolPages: e.cfg.PoolPages, FS: e.cfg.FS})
		if err != nil {
			for _, s := range e.segs {
				s.ix.Close()
			}
			return nil, fmt.Errorf("xrank: open segment %d (%s): %w", se.ID, se.Dir, err)
		}
		var sug *suggestTrie
		if !e.cfg.SuggestDisabled {
			if sug, err = loadSegmentSuggest(fs, segPath); err != nil {
				ix.Close()
				for _, s := range e.segs {
					s.ix.Close()
				}
				return nil, fmt.Errorf("xrank: open segment %d (%s): %w", se.ID, se.Dir, err)
			}
		}
		e.segs = append(e.segs, &engineSegment{id: se.ID, dir: se.Dir, rankVer: se.RankVer, docs: se.Docs, ix: ix, sug: sug})
	}
	e.ix = e.segs[0].ix
	e.rankVer = sm.RankVer
	e.nextSeg = sm.NextSeg
	e.segmented = true
	e.built = true
	e.met.shards.Set(int64(e.ix.NumShards()))
	e.met.segments.Set(int64(len(e.segs)))
	e.updateSuggestGauge()
	return e, nil
}
