package xrank

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/storage"
)

// Crash-simulation harness: each test sizes a workload by running it
// once through a fault-free FaultFS (counting its write boundaries),
// then replays it once per boundary with a simulated crash armed there.
// After every crash the index directory must open as exactly the
// pre-operation or the post-operation engine — scores bit-identical to
// the corresponding clean build — or refuse to open; a third state is a
// durability bug.

// crashCorpus is a small multi-document collection with enough term
// overlap that queries rank across documents.
func crashCorpus() map[string]string {
	docs := make(map[string]string)
	for i := 0; i < 5; i++ {
		docs[fmt.Sprintf("doc%d.xml", i)] = fmt.Sprintf(
			`<book id="%d"><title>xml ranked search volume %d</title>
			 <chapter><t>keyword retrieval</t><p>the xql language chapter %d</p></chapter>
			 <cite ref="%d">see also</cite></book>`, i, i, i, (i+1)%5)
	}
	return docs
}

func addCorpus(t *testing.T, e *Engine, docs map[string]string) {
	t.Helper()
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	// Deterministic document IDs regardless of map order.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		if err := e.AddXML(n, strings.NewReader(docs[n])); err != nil {
			t.Fatal(err)
		}
	}
}

// crashSig runs a fixed query workload and returns its exact results —
// the bit-identical-scores signature two equivalent indexes must share.
func crashSig(t *testing.T, e *Engine) [][]SearchResult {
	t.Helper()
	var sig [][]SearchResult
	for _, q := range []struct {
		q    string
		algo Algorithm
	}{
		{"xml search", AlgoDIL},
		{"keyword retrieval", AlgoRDIL},
		{"xql language", AlgoDIL},
	} {
		rs, _, err := e.SearchDetailed(q.q, SearchOptions{Algorithm: q.algo, TopM: 10})
		if err != nil {
			t.Fatalf("signature query %q: %v", q.q, err)
		}
		sig = append(sig, rs)
	}
	return sig
}

// crashStride bounds matrix size under -short (the CI race runner):
// every boundary still gets covered over time because the full matrix
// runs in the default mode.
func crashStride(n int64, t *testing.T) int64 {
	if !testing.Short() {
		return 1
	}
	s := n / 16
	if s < 1 {
		s = 1
	}
	return s
}

// TestCrashMatrixBuild kills a fresh Build at every write boundary. A
// build into an empty directory has no "old" state, so after each crash
// the directory must either refuse to open or open as the complete new
// index.
func TestCrashMatrixBuild(t *testing.T) {
	docs := crashCorpus()

	ref := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2})
	addCorpus(t, ref, docs)
	if _, err := ref.Build(); err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := crashSig(t, ref)

	// Sizing run: the same build through a fault-free FaultFS must be
	// byte-equivalent, and tells us how many boundaries the matrix has.
	sizing := storage.NewFaultFS(nil, 1)
	se := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2, FS: sizing})
	addCorpus(t, se, docs)
	if _, err := se.Build(); err != nil {
		t.Fatal(err)
	}
	if got := crashSig(t, se); !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free FaultFS build differs from the plain build")
	}
	se.Close()
	n := sizing.WriteOps()
	if n < 20 {
		t.Fatalf("build counted only %d write boundaries", n)
	}

	for k := int64(1); k <= n; k += crashStride(n, t) {
		dir := t.TempDir()
		ffs := storage.NewFaultFS(nil, k) // vary the seed: different torn prefixes
		ffs.CrashAtWriteOp(k)
		e := NewEngine(&Config{IndexDir: dir, Shards: 2, FS: ffs})
		addCorpus(t, e, docs)
		if _, err := e.Build(); err == nil {
			t.Fatalf("crash at op %d/%d: Build reported success", k, n)
		}
		re, err := OpenEngine(dir)
		if err != nil {
			continue // pre-state: the directory never committed
		}
		got := crashSig(t, re)
		re.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("crash at op %d/%d: reopened index differs from the clean build", k, n)
		}
	}
}

// TestCrashMatrixUpdate kills an Update at every write boundary. The
// update targets a new directory, so after each crash the original
// index must be untouched and the target must either refuse to open or
// equal the clean post-update index.
func TestCrashMatrixUpdate(t *testing.T) {
	docs := crashCorpus()
	newDoc := `<book id="9"><title>new xml search material</title><p>fresh keyword text</p></book>`
	readers := func() map[string]io.Reader {
		return map[string]io.Reader{"new.xml": strings.NewReader(newDoc)}
	}

	dirA := t.TempDir()
	base := NewEngine(&Config{IndexDir: dirA, Shards: 2})
	addCorpus(t, base, docs)
	if _, err := base.Build(); err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	baseWant := crashSig(t, base)

	refEng, err := base.Update(filepath.Join(t.TempDir(), "upd"), readers())
	if err != nil {
		t.Fatal(err)
	}
	want := crashSig(t, refEng)
	refEng.Close()

	sizing := storage.NewFaultFS(nil, 9)
	sb, err := OpenEngineFS(dirA, sizing)
	if err != nil {
		t.Fatal(err)
	}
	su, err := sb.Update(filepath.Join(t.TempDir(), "upd"), readers())
	if err != nil {
		t.Fatal(err)
	}
	if got := crashSig(t, su); !reflect.DeepEqual(got, want) {
		t.Fatal("fault-free FaultFS update differs from the plain update")
	}
	su.Close()
	sb.Close()
	n := sizing.WriteOps()

	for k := int64(1); k <= n; k += crashStride(n, t) {
		ffs := storage.NewFaultFS(nil, 9+k)
		bk, err := OpenEngineFS(dirA, ffs)
		if err != nil {
			t.Fatalf("crash replay %d: reopen base: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		dirK := filepath.Join(t.TempDir(), "upd")
		if _, uerr := bk.Update(dirK, readers()); uerr == nil {
			t.Fatalf("crash at op %d/%d: Update reported success", k, n)
		}
		bk.Close()

		// The original index must be wholly unaffected.
		chk, err := OpenEngine(dirA)
		if err != nil {
			t.Fatalf("crash at op %d/%d corrupted the ORIGINAL index: %v", k, n, err)
		}
		if got := crashSig(t, chk); !reflect.DeepEqual(got, baseWant) {
			t.Fatalf("crash at op %d/%d changed the original index's results", k, n)
		}
		chk.Close()

		// The target is either not-yet-committed or complete.
		re, err := OpenEngine(dirK)
		if err != nil {
			continue
		}
		got := crashSig(t, re)
		re.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("crash at op %d/%d: target opened as a third state", k, n)
		}
	}
}

// TestCrashMatrixDeleteDoc kills the tombstone's manifest rewrite at
// every boundary: the directory must afterwards open with the document
// either still present or fully deleted.
func TestCrashMatrixDeleteDoc(t *testing.T) {
	docs := crashCorpus()
	const victim = "doc2.xml"

	dirA := t.TempDir()
	base := NewEngine(&Config{IndexDir: dirA, Shards: 2})
	addCorpus(t, base, docs)
	if _, err := base.Build(); err != nil {
		t.Fatal(err)
	}
	preSig := crashSig(t, base)
	base.Close()

	manPath := filepath.Join(dirA, "engine.json")
	pristine, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(manPath, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(storage.TempPath(manPath))
	}

	// Clean delete: sizes the matrix and captures the post-state.
	sizing := storage.NewFaultFS(nil, 5)
	se, err := OpenEngineFS(dirA, sizing)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.DeleteDoc(victim); err != nil {
		t.Fatal(err)
	}
	n := sizing.WriteOps()
	postSig := crashSig(t, se)
	se.Close()
	restore()
	if reflect.DeepEqual(preSig, postSig) {
		t.Fatal("deleting the victim does not change any signature query; the matrix would prove nothing")
	}

	for k := int64(1); k <= n; k++ {
		ffs := storage.NewFaultFS(nil, 5+k)
		e, err := OpenEngineFS(dirA, ffs)
		if err != nil {
			t.Fatalf("crash replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		if derr := e.DeleteDoc(victim); derr == nil {
			t.Fatalf("crash at op %d/%d: DeleteDoc reported success", k, n)
		}
		e.Close()

		re, err := OpenEngine(dirA)
		if err != nil {
			t.Fatalf("crash at op %d/%d left the directory unopenable: %v", k, n, err)
		}
		got := crashSig(t, re)
		deleted := re.DeletedDocs()
		re.Close()
		switch {
		case len(deleted) == 0 && reflect.DeepEqual(got, preSig):
			// old state
		case len(deleted) == 1 && deleted[0] == victim && reflect.DeepEqual(got, postSig):
			// new state
		default:
			t.Fatalf("crash at op %d/%d: third state (deleted=%v)", k, n, deleted)
		}
		restore()
	}
}
