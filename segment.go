package xrank

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"xrank/internal/index"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// Segment-based incremental indexing. The paper handles additions by
// rebuilding (Section 4.5); this layer amortizes that: the index built
// by Build becomes segment 0, and each AddDocs batch goes into a small
// immutable delta segment built over just the new documents. Queries
// merge the per-segment top-m's (every scoring decision is
// intra-document and every document lives in exactly one segment, so
// the merge is exact), and a compactor periodically folds the segments
// back into one (see compact.go).
//
// ElemRank is global: adding any document changes N_d and the link
// graph, so every element's rank moves with each batch. Each segment
// therefore records the rank version its postings were baked under;
// segments at an older version are "stale" and queries substitute the
// current global ElemRanks at merge time (rounded through float32,
// matching what a rebuild would bake into the postings — scores stay
// bit-identical to a from-scratch build). Because the rank-ordered
// lists of a stale segment are sorted by outdated ranks, the threshold
// algorithms are unsound there; stale segments route RDIL/HDIL to DIL
// and Naive-Rank to Naive-ID.
//
// Durability: document-store files, the versioned ranks blob and the
// delta segment's index files are all written first (inert orphans
// until referenced); segments.json is then atomically replaced and is
// the sole commit point. A crash anywhere leaves the previous manifest
// — and thus the previous engine state — fully intact.

// fileSegments is the segmented layout's manifest and commit point.
const fileSegments = "segments.json"

// baseSegmentDir marks the segment living directly in the index
// directory (the original Build output).
const baseSegmentDir = "."

// engineSegment is one live immutable segment.
type engineSegment struct {
	id      int
	dir     string // baseSegmentDir or "seg-NNNNNN", relative to IndexDir
	rankVer int    // ElemRank version the postings were baked under
	docs    []uint32
	ix      *index.Sharded
	// sug is the segment's autosuggest dictionary (nil when suggest is
	// disabled or the segment predates the artifact); see suggest.go.
	sug *suggestTrie
}

func (s *engineSegment) path(indexDir string) string {
	if s.dir == baseSegmentDir {
		return indexDir
	}
	return filepath.Join(indexDir, s.dir)
}

// segmentEntry is one segment in the persisted manifest.
type segmentEntry struct {
	ID      int      `json:"id"`
	Dir     string   `json:"dir"`
	RankVer int      `json:"rank_ver"`
	Docs    []uint32 `json:"docs"`
}

// segmentsManifest is the segments.json payload. Once it exists it
// supersedes engine.json's document list (engine.json keeps supplying
// the Config, which never changes after Build).
type segmentsManifest struct {
	NextSeg  int            `json:"next_seg"`
	RankVer  int            `json:"rank_ver"`
	Docs     []docEntry     `json:"docs"`
	Segments []segmentEntry `json:"segments"`
}

// validateSegmentsManifest checks the structural invariants a
// well-formed manifest must satisfy: at least one segment, unique IDs
// below NextSeg, sane directory names, and the segments partitioning
// the document list exactly. The fuzz target drives this directly.
func validateSegmentsManifest(sm *segmentsManifest) error {
	if len(sm.Segments) == 0 {
		return fmt.Errorf("no segments")
	}
	if sm.RankVer < 0 {
		return fmt.Errorf("negative rank_ver %d", sm.RankVer)
	}
	owner := make([]bool, len(sm.Docs))
	ids := make(map[int]bool, len(sm.Segments))
	for _, seg := range sm.Segments {
		if seg.ID < 0 || seg.ID >= sm.NextSeg {
			return fmt.Errorf("segment id %d outside [0, next_seg %d)", seg.ID, sm.NextSeg)
		}
		if ids[seg.ID] {
			return fmt.Errorf("duplicate segment id %d", seg.ID)
		}
		ids[seg.ID] = true
		if seg.Dir != baseSegmentDir &&
			(seg.Dir == "" || seg.Dir == ".." || strings.ContainsAny(seg.Dir, `/\`)) {
			return fmt.Errorf("segment %d: invalid dir %q", seg.ID, seg.Dir)
		}
		if seg.RankVer < 0 || seg.RankVer > sm.RankVer {
			return fmt.Errorf("segment %d: rank_ver %d outside [0, %d]", seg.ID, seg.RankVer, sm.RankVer)
		}
		for _, d := range seg.Docs {
			if int(d) >= len(owner) {
				return fmt.Errorf("segment %d: document %d beyond the %d-entry manifest", seg.ID, d, len(owner))
			}
			if owner[d] {
				return fmt.Errorf("document %d owned by two segments", d)
			}
			owner[d] = true
		}
	}
	for d, ok := range owner {
		if !ok {
			return fmt.Errorf("document %d not owned by any segment", d)
		}
	}
	return nil
}

// ranksFile names the ElemRank blob for one rank version. Version 0 is
// the legacy Build output; later versions are written by AddDocs, each
// under a fresh name so the previous blob stays intact until the
// manifest referencing the new one has committed.
func ranksFile(ver int) string {
	if ver == 0 {
		return "ranks.bin"
	}
	return fmt.Sprintf("ranks-%06d.bin", ver)
}

func segmentDirName(id int) string { return fmt.Sprintf("seg-%06d", id) }

// initBaseSegment registers ix — a freshly built or reopened
// whole-collection index living directly in IndexDir — as segment 0,
// with its suggest dictionary (nil when disabled or absent).
func (e *Engine) initBaseSegment(ix *index.Sharded, sug *suggestTrie) {
	ids := make([]uint32, e.col.NumDocs())
	for i := range ids {
		ids[i] = uint32(i)
	}
	e.ix = ix
	e.segs = []*engineSegment{{id: 0, dir: baseSegmentDir, rankVer: 0, docs: ids, ix: ix, sug: sug}}
	e.rankVer = 0
	e.nextSeg = 1
	e.met.segments.Set(1)
	e.updateSuggestGauge()
}

// writeSegmentsManifest atomically replaces segments.json with sm.
func (e *Engine) writeSegmentsManifest(sm *segmentsManifest) error {
	return storage.WriteManifestAtomic(e.fs(), filepath.Join(e.cfg.IndexDir, fileSegments), sm)
}

// persistSegments rewrites segments.json from the engine's current
// state (the DeleteDoc path). Callers hold updateMu.
func (e *Engine) persistSegments() error {
	sm := &segmentsManifest{NextSeg: e.nextSeg, RankVer: e.rankVer, Docs: e.docs}
	for _, s := range e.segs {
		sm.Segments = append(sm.Segments, segmentEntry{ID: s.id, Dir: s.dir, RankVer: s.rankVer, Docs: s.docs})
	}
	return e.writeSegmentsManifest(sm)
}

// encodeRanks serializes ElemRanks for a versioned ranks blob.
func encodeRanks(ranks []float64) []byte {
	buf := make([]byte, 8*len(ranks))
	for i, r := range ranks {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(r))
	}
	return buf
}

func decodeRanks(rb []byte) []float64 {
	ranks := make([]float64, len(rb)/8)
	for i := range ranks {
		ranks[i] = math.Float64frombits(binary.LittleEndian.Uint64(rb[i*8:]))
	}
	return ranks
}

func isHTMLName(name string) bool {
	ext := filepath.Ext(name)
	return ext == ".html" || ext == ".htm"
}

// AddDocs incrementally adds documents to a built engine: the batch is
// parsed into the collection, global ElemRanks are recomputed (adding
// any document moves every element's rank), and a delta segment
// covering just the new documents is built and committed via
// segments.json — the full index is NOT rebuilt. A name that already
// exists replaces that document: the old version is tombstoned and the
// new one takes over its name. Names ending in .html/.htm parse as
// HTML. On error the engine is unchanged (half-written files are
// orphans no manifest references).
//
// Scores after AddDocs are bit-identical to a from-scratch rebuild
// over the same documents; see the package comments above on stale
// segments. The whole result cache is invalidated (every cached score
// predates the new ElemRanks).
func (e *Engine) AddDocs(add map[string]io.Reader) error {
	if !e.built {
		return fmt.Errorf("xrank: AddDocs before Build")
	}
	if len(add) == 0 {
		return nil
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()

	names := make([]string, 0, len(add))
	for n := range add {
		names = append(names, n)
	}
	sort.Strings(names)

	// Parse everything into a copy-on-write clone first: a parse error
	// must leave the live collection untouched.
	col2 := e.col.Clone()
	docs2 := append([]docEntry(nil), e.docs...)
	var shadowed []uint32
	newIDs := make(map[uint32]bool, len(names))
	var segDocs []uint32
	for _, n := range names {
		raw, err := io.ReadAll(add[n])
		if err != nil {
			return fmt.Errorf("xrank: read %s: %w", n, err)
		}
		if old := col2.DocByName(n); old != nil && !docs2[old.ID].Deleted {
			shadowed = append(shadowed, old.ID)
		}
		html := isHTMLName(n)
		var d *xmldoc.Document
		if html {
			d, err = col2.AddHTMLVersion(n, bytes.NewReader(raw), nil)
		} else {
			d, err = col2.AddXMLVersion(n, bytes.NewReader(raw), nil)
		}
		if err != nil {
			return err
		}
		newIDs[d.ID] = true
		segDocs = append(segDocs, d.ID)
		docs2 = append(docs2, docEntry{Name: n, HTML: html, raw: raw})
	}

	res, _, err := e.computeRanks(col2)
	if err != nil {
		return err
	}
	ranks2 := res.Scores
	rankVer2 := e.rankVer + 1

	// Durable but uncommitted: document-store files, the new ranks blob
	// and the delta segment. All land under fresh names, so until
	// segments.json flips they are invisible orphans.
	fs := e.fs()
	dir := e.cfg.IndexDir
	docsDir := filepath.Join(dir, "docs")
	if err := fs.MkdirAll(docsDir); err != nil {
		return err
	}
	for i := len(e.docs); i < len(docs2); i++ {
		d := &docs2[i]
		ext := ".xml"
		if d.HTML {
			ext = ".html"
		}
		d.File = fmt.Sprintf("%06d%s", i, ext)
		if err := storage.WriteFileAtomic(fs, filepath.Join(docsDir, d.File), d.raw); err != nil {
			return err
		}
		d.Size = int64(len(d.raw))
		d.CRC32 = storage.Checksum(d.raw)
		d.raw = nil
	}
	if err := storage.WriteBlobAtomic(fs, filepath.Join(dir, ranksFile(rankVer2)), ranksMagic, encodeRanks(ranks2)); err != nil {
		return err
	}

	segID := e.nextSeg
	segDirName := segmentDirName(segID)
	segPath := filepath.Join(dir, segDirName)
	if err := fs.MkdirAll(segPath); err != nil {
		return err
	}
	if _, err := index.BuildSharded(col2, ranks2, segPath, index.BuildOptions{
		RankFraction:  e.cfg.RankFraction,
		MaxPositions:  e.cfg.MaxPositions,
		SkipNaive:     e.cfg.SkipNaive,
		CompressDewey: e.cfg.CompressDewey,
		BlockPostings: e.cfg.BlockPostings,
		DocFilter:     func(doc uint32) bool { return newIDs[doc] },
		FS:            e.cfg.FS,
	}, e.cfg.Shards); err != nil {
		return fmt.Errorf("xrank: delta segment: %w", err)
	}
	six, err := index.OpenSharded(segPath, index.OpenOptions{PoolPages: e.cfg.PoolPages, FS: e.cfg.FS})
	if err != nil {
		return fmt.Errorf("xrank: delta segment: %w", err)
	}

	// The delta segment's suggest dictionary covers just the batch,
	// weighted by the batch's rank version, and lands inside the
	// still-unreferenced segment directory before the manifest commit.
	var sug *suggestTrie
	if !e.cfg.SuggestDisabled {
		sug = buildSegmentSuggest(col2, ranks2, segDocs)
		if err := e.writeSegmentSuggest(segPath, sug); err != nil {
			six.Close()
			return err
		}
	}

	for _, id := range shadowed {
		docs2[id].Deleted = true
	}
	newSeg := &engineSegment{id: segID, dir: segDirName, rankVer: rankVer2, docs: segDocs, ix: six, sug: sug}
	segs2 := append(append([]*engineSegment(nil), e.segs...), newSeg)
	sm := &segmentsManifest{NextSeg: segID + 1, RankVer: rankVer2, Docs: docs2}
	for _, s := range segs2 {
		sm.Segments = append(sm.Segments, segmentEntry{ID: s.id, Dir: s.dir, RankVer: s.rankVer, Docs: s.docs})
	}
	// Commit point. Before this write the old state is intact; after it
	// a reopen sees the batch.
	if err := e.writeSegmentsManifest(sm); err != nil {
		six.Close()
		return err
	}

	// Swap the queryable snapshot. Queries hold the read lock end to
	// end, so acquiring the write lock means no query observes a torn
	// mix of old and new fields (or a tombstone-free shadowed version).
	e.snapMu.Lock()
	e.mu.Lock()
	if e.deleted == nil && len(shadowed) > 0 {
		e.deleted = make(map[uint32]bool)
	}
	for _, id := range shadowed {
		e.deleted[id] = true
	}
	e.mu.Unlock()
	oldRankVer := e.rankVer
	e.col = col2
	e.ranks = ranks2
	e.rankVer = rankVer2
	e.nextSeg = segID + 1
	e.docs = docs2
	e.segs = segs2
	e.segmented = true
	e.updateSuggestGauge()
	e.snapMu.Unlock()

	// Every element's ElemRank changed, so every cached score is wrong:
	// this is the one update that still voids the whole result cache.
	e.gen.Add(1)
	// Best-effort retirement of the superseded ranks blob; a crash here
	// leaves an orphan, not an inconsistency.
	fs.Remove(filepath.Join(dir, ranksFile(oldRankVer)))
	e.met.segments.Set(int64(len(segs2)))
	return nil
}

// AddDoc is AddDocs for a single document.
func (e *Engine) AddDoc(name string, r io.Reader) error {
	return e.AddDocs(map[string]io.Reader{name: r})
}

// SegmentInfo describes one live segment (the /api/segments payload).
type SegmentInfo struct {
	ID      int    `json:"id"`
	Dir     string `json:"dir"`
	RankVer int    `json:"rank_ver"`
	// Stale reports the segment's baked ElemRanks predate the current
	// rank version (queries substitute the live values).
	Stale    bool `json:"stale"`
	Docs     int  `json:"docs"`
	LiveDocs int  `json:"live_docs"`
	Shards   int  `json:"shards"`
}

// Segments returns the live segments in commit order (nil before
// Build).
func (e *Engine) Segments() []SegmentInfo {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]SegmentInfo, 0, len(e.segs))
	for _, s := range e.segs {
		live := 0
		for _, id := range s.docs {
			if !e.deleted[id] {
				live++
			}
		}
		out = append(out, SegmentInfo{
			ID:       s.id,
			Dir:      s.dir,
			RankVer:  s.rankVer,
			Stale:    s.rankVer != e.rankVer,
			Docs:     len(s.docs),
			LiveDocs: live,
			Shards:   s.ix.NumShards(),
		})
	}
	return out
}

// SegmentCount returns the number of live segments (0 before Build).
func (e *Engine) SegmentCount() int {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	return len(e.segs)
}

// RankVersion returns the current global ElemRank version (0 after
// Build, incremented by every AddDocs batch).
func (e *Engine) RankVersion() int {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	return e.rankVer
}

// addVersion and deleteDocID are test seams: the differential harness
// replays an engine's full document history (including shadowed and
// tombstoned versions, preserving document IDs) into a from-scratch
// engine and then re-applies the tombstones by ID.

func (e *Engine) addVersion(name string, raw []byte, html bool) error {
	if e.built {
		return fmt.Errorf("xrank: collection is sealed after Build")
	}
	var err error
	if html {
		_, err = e.col.AddHTMLVersion(name, bytes.NewReader(raw), nil)
	} else {
		_, err = e.col.AddXMLVersion(name, bytes.NewReader(raw), nil)
	}
	if err != nil {
		return err
	}
	e.docs = append(e.docs, docEntry{Name: name, HTML: html, raw: raw})
	return nil
}

func (e *Engine) deleteDocID(id uint32) {
	e.mu.Lock()
	if e.deleted == nil {
		e.deleted = make(map[uint32]bool)
	}
	e.deleted[id] = true
	e.mu.Unlock()
	if int(id) < len(e.docs) {
		e.docs[id].Deleted = true
	}
}
