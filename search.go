package xrank

import (
	"context"
	"fmt"
	"strings"
	"time"
	"unicode/utf8"

	"xrank/internal/cache"
	"xrank/internal/dewey"
	"xrank/internal/index"
	"xrank/internal/obs"
	"xrank/internal/query"
	"xrank/internal/storage"
	"xrank/internal/xmldoc"
)

// Algorithm selects the query processing strategy.
type Algorithm int

const (
	// AlgoHDIL is the paper's recommended default: the adaptive hybrid.
	AlgoHDIL Algorithm = iota
	// AlgoDIL is the single-pass Dewey-stack merge (Figure 5).
	AlgoDIL
	// AlgoRDIL is the rank-ordered threshold algorithm (Figure 7).
	AlgoRDIL
	// AlgoNaiveID is the element-granularity baseline merged by ID.
	AlgoNaiveID
	// AlgoNaiveRank is the element-granularity baseline with TA + hash.
	AlgoNaiveRank
)

func (a Algorithm) String() string {
	switch a {
	case AlgoHDIL:
		return "HDIL"
	case AlgoDIL:
		return "DIL"
	case AlgoRDIL:
		return "RDIL"
	case AlgoNaiveID:
		return "Naive-ID"
	case AlgoNaiveRank:
		return "Naive-Rank"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// SearchOptions tune one query.
type SearchOptions struct {
	// TopM is the desired number of results (default 10).
	TopM int
	// Algorithm selects the processor (default AlgoHDIL).
	Algorithm Algorithm
	// ColdCache empties the buffer pools before the query, mimicking the
	// paper's measurement protocol. The pools and their counters are
	// engine-global, so ColdCache is a single-tenant measurement knob:
	// emptying them while other queries are in flight is safe (the race
	// detector is clean) but yanks cached pages out from under those
	// queries and corrupts any global-counter measurements. Per-query
	// I/O attribution (QueryStats.IO) is unaffected.
	ColdCache bool
	// MaxPageReads caps the number of device page reads this query may
	// perform; once exceeded the query aborts with an error wrapping
	// ErrBudgetExceeded. Buffer-pool hits are free. Zero means
	// unlimited.
	MaxPageReads int64

	// Decay overrides the engine's per-level rank decay for this query
	// (0 keeps the engine default). Decay is a query-time parameter: the
	// index stores undecayed per-entry ElemRanks.
	Decay float64
	// ProximityOff disables the keyword proximity factor for this query.
	ProximityOff bool
	// SumAggregation uses f=sum instead of f=max over multiple keyword
	// occurrences (Section 2.3.2.1). Only the full-scan algorithms (DIL,
	// Naive-ID) support it; the threshold algorithms reject it.
	SumAggregation bool
	// Disjunctive switches to disjunctive keyword semantics (Section 2.2):
	// elements directly containing at least one keyword, scored by the
	// keywords present. Evaluated with a DIL-style merge; Algorithm is
	// ignored.
	Disjunctive bool
	// Weights assigns per-keyword weights (Section 2.3.2.2), aligned with
	// the distinct keywords of the query in order of first appearance.
	Weights []float64
	// TFIDF scores occurrences by tf-idf instead of ElemRank — the
	// "other ranking functions" extension of Section 7. Supported by
	// AlgoDIL and AlgoNaiveID (and disjunctive queries) only.
	TFIDF bool
}

// SearchResult is one ranked result.
type SearchResult struct {
	// DeweyID is the dotted Dewey ID of the result element.
	DeweyID string
	// Score is the overall rank R(v, Q).
	Score float64
	// Doc is the owning document's name.
	Doc string
	// Path is the tag path from the document root, e.g.
	// "workshop/proceedings/paper/title".
	Path string
	// Tag is the element's tag name.
	Tag string
	// Snippet is up to ~160 characters of the element's text content.
	Snippet string
}

// QueryStats reports the cost of one query.
type QueryStats struct {
	Algorithm     Algorithm
	Keywords      []string
	WallTime      time.Duration
	IO            storage.Stats
	SimulatedTime time.Duration // under the default cost model
	SwitchedToDIL bool          // HDIL only: true if any shard switched
	Shards        int           // index partitions the query fanned out over
	Segments      int           // live index segments merged by the query

	// Cached reports the results were served from the engine's result
	// cache: no index I/O happened on behalf of this call, and IO,
	// SimulatedTime and the execution spans of Trace are zero/absent.
	// Coalesced reports the results were shared from another caller's
	// concurrent identical execution (the I/O is attributed to that
	// execution, not this call). At most one of the two is set.
	Cached    bool
	Coalesced bool

	// Degraded reports that the query completed without some shards:
	// transient device faults survived the retry budget, or shards already
	// marked unhealthy were skipped. The results are the correct top-k of
	// the healthy shards only. FailedShards lists the excluded shards;
	// Retries counts the shard executions retried after transient faults
	// (including ones that then succeeded); Probes counts the half-open
	// trials this query granted to unhealthy shards
	// (Config.ShardProbeIntervalMillis).
	Degraded     bool
	FailedShards []int
	Retries      int
	Probes       int

	// Trace holds the per-stage spans recorded while the query ran:
	// engine stages (tokenize, execute, materialize), algorithm stages
	// (e.g. dil.open, dil.merge, rdil.rounds, hdil.switch), and on a
	// partitioned index the per-shard fan-out (shardNN.exec, merge.topk).
	// Spans are sorted by start time; parallel shard spans overlap.
	Trace []obs.Span
}

// Search runs a free-text conjunctive keyword query with default options
// and returns the top 10 results.
func (e *Engine) Search(q string) ([]SearchResult, error) {
	res, _, err := e.SearchDetailed(q, SearchOptions{})
	return res, err
}

// SearchTop runs the query returning the top-m results.
func (e *Engine) SearchTop(q string, m int) ([]SearchResult, error) {
	res, _, err := e.SearchDetailed(q, SearchOptions{TopM: m})
	return res, err
}

// SearchDetailed runs the query with explicit options and returns cost
// statistics alongside the results. It is SearchContext with a background
// context: no cancellation and no deadline.
func (e *Engine) SearchDetailed(q string, opts SearchOptions) ([]SearchResult, *QueryStats, error) {
	return e.SearchContext(context.Background(), q, opts)
}

// Over-fetch factors for answer-node collapsing and tombstone filtering:
// the raw top-(m·overfetchBase) is fetched first, and if collapsing still
// leaves fewer than m results while the raw result set was full, the
// query retries once at m·overfetchBase·overfetchRetry. A collection
// whose raw results collapse more than overfetchBase·overfetchRetry-to-1
// onto the same answer nodes can still return fewer than m results.
const (
	overfetchBase  = 4
	overfetchRetry = 4
)

// SearchContext runs the query with explicit options under ctx and
// returns cost statistics alongside the results.
//
// SearchContext is the engine's concurrent query entry point: any number
// of calls may run in parallel against one engine (and interleave with
// DeleteDoc). Each call gets a private storage.ExecContext, so the
// returned QueryStats.IO describes exactly this query's page traffic —
// device reads, sequential/random classification and buffer-pool hits —
// with no bleed from concurrent queries. Cancellation or deadline
// expiration of ctx aborts the query at its next page access or
// merge-loop boundary with ctx's error; exceeding opts.MaxPageReads
// aborts it with an error wrapping ErrBudgetExceeded.
//
// With Config.CacheBytes > 0 a repeated query may be answered from the
// result cache (QueryStats.Cached); with Config.CoalesceQueries
// concurrent identical queries share one execution
// (QueryStats.Coalesced). Build, AddDocs and ColdCache invalidate all
// cached results; DeleteDoc evicts exactly the entries mentioning the
// deleted document; degraded results are never cached. Queries with
// opts.ColdCache or a page-read budget always execute fresh.
func (e *Engine) SearchContext(ctx context.Context, q string, opts SearchOptions) ([]SearchResult, *QueryStats, error) {
	if !e.built {
		return nil, nil, fmt.Errorf("xrank: engine not built")
	}
	trace := obs.NewTrace()
	start := time.Now()
	keywords := tokenizeQuery(q)
	trace.RecordSpan("tokenize", start, time.Since(start))
	if len(keywords) == 0 {
		// A keyword-free query is an invalid request, not a served query:
		// it never reaches the metrics.
		return nil, nil, fmt.Errorf("xrank: query %q contains no keywords", q)
	}
	if opts.TopM <= 0 {
		opts.TopM = 10
	}
	if opts.ColdCache {
		// ColdCache bumps the generation too, so a cold measurement is
		// never answered from the result cache.
		if err := e.ColdCache(); err != nil {
			return nil, nil, err
		}
	}

	// Result-cache and coalescing eligibility. ColdCache queries are
	// measurements and must execute. Budgeted queries execute too: the
	// budget changes whether a query errors, not what it returns, so
	// sharing one execution (or its cached result) across callers with
	// different budgets would serve the wrong outcome.
	shareable := !opts.ColdCache && opts.MaxPageReads == 0
	if !shareable || (e.rcache == nil && !e.cfg.CoalesceQueries) {
		return e.executeQuery(ctx, q, keywords, opts, trace, start)
	}

	// The generation is captured before the lookup and before execution
	// starts: a Build/DeleteDoc/ColdCache that lands mid-flight bumps the
	// counter past gen, so the entry stored below is already stale and can
	// never be served.
	gen := e.gen.Load()
	key := e.cacheKey(keywords, opts)

	if e.rcache != nil {
		if v, ok, stale := e.rcache.Get(key, gen); ok {
			fv := v.(*flightEntry)
			if e.docsLive(fv.docs) {
				return e.serveShared(fv, q, keywords, opts, trace, start, true)
			}
			// An execution that started before a DeleteDoc can store its
			// entry after the per-document eviction swept the cache; the
			// liveness check catches that race at serving time.
			e.rcache.Delete(key)
			e.met.resultStale.Inc()
		} else if stale {
			e.met.resultStale.Inc()
		}
		e.met.resultMisses.Inc()
	}

	if !e.cfg.CoalesceQueries {
		out, stats, err := e.executeQuery(ctx, q, keywords, opts, trace, start)
		if err == nil && !stats.Degraded {
			e.storeResult(key, gen, newFlightEntry(out, stats.Shards))
		}
		return out, stats, err
	}

	// Coalesced path: the flight runs executeQuery under its own context
	// (waiter-side cancellation, see cache.Group), records its own
	// metrics, and publishes an immutable flightEntry for the cache and
	// for every coalesced caller. leaderOut/leaderStats hand the
	// execution's own results back to the creator without a copy; the
	// close of the flight's done channel orders the writes before the
	// creator's read.
	var (
		leaderOut   []SearchResult
		leaderStats *QueryStats
	)
	v, err, leader := e.flights.Do(ctx, key, func(fctx context.Context) (any, error) {
		out, stats, err := e.executeQuery(fctx, q, keywords, opts, trace, start)
		if err != nil {
			return nil, err
		}
		fv := newFlightEntry(out, stats.Shards)
		if !stats.Degraded {
			e.storeResult(key, gen, fv)
		}
		leaderOut, leaderStats = out, stats
		return fv, nil
	})
	switch {
	case err == nil && leader:
		return leaderOut, leaderStats, nil
	case err == nil:
		return e.serveShared(v.(*flightEntry), q, keywords, opts, trace, start, false)
	case leader:
		// The execution itself already recorded the failure.
		return nil, nil, err
	default:
		// A waiter that ends with an error — the shared flight failed, or
		// this caller's own ctx died while waiting — is still a served
		// request: account it like any failed query.
		stats := &QueryStats{Algorithm: opts.Algorithm, Keywords: keywords, Coalesced: true}
		e.met.queryStarted()
		e.met.coalesced.Inc()
		stats.WallTime = time.Since(start)
		stats.Trace = trace.Spans()
		e.met.queryFinished(algoLabel(opts), q, stats, err)
		return nil, nil, err
	}
}

// flightEntry is the immutable value shared through the result cache and
// between coalesced callers: nothing mutates it after creation, and
// every shared serving copies results out (callers own their slices).
// docs lists the distinct document names the results mention, so
// DeleteDoc can evict exactly the entries that involve the tombstoned
// document.
type flightEntry struct {
	results []SearchResult
	docs    []string
	shards  int
}

// newFlightEntry snapshots one completed execution's results for
// sharing, collecting the distinct document names in order of first
// appearance.
func newFlightEntry(out []SearchResult, shards int) *flightEntry {
	fv := &flightEntry{results: copyResults(out), shards: shards}
	seen := make(map[string]bool, len(out))
	for i := range out {
		if d := out[i].Doc; !seen[d] {
			seen[d] = true
			fv.docs = append(fv.docs, d)
		}
	}
	return fv
}

// size estimates the entry's resident bytes for the cache's byte bound.
func (f *flightEntry) size(key string) int64 {
	n := int64(len(key)) + 128 // entry, map slot and struct overhead
	for i := range f.results {
		r := &f.results[i]
		n += int64(len(r.DeweyID)+len(r.Doc)+len(r.Path)+len(r.Tag)+len(r.Snippet)) + 64
	}
	for _, d := range f.docs {
		n += int64(len(d)) + 24
	}
	return n
}

// docsLive reports whether every named document is still live (present
// and not tombstoned). Serving a cached entry re-checks this so a
// result set mentioning a deleted document is never served, even if its
// store raced past the per-document eviction.
func (e *Engine) docsLive(names []string) bool {
	if len(names) == 0 {
		return true
	}
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, n := range names {
		d := e.col.DocByName(n)
		if d == nil || e.deleted[d.ID] {
			return false
		}
	}
	return true
}

func copyResults(rs []SearchResult) []SearchResult {
	return append([]SearchResult(nil), rs...)
}

// cacheKey canonicalizes one query for the result cache and the
// coalescing group, with engine-level defaults resolved so that e.g. an
// explicit opts.Decay equal to the engine default still collides.
func (e *Engine) cacheKey(keywords []string, opts SearchOptions) string {
	decay := opts.Decay
	if decay == 0 {
		decay = e.cfg.Decay
	}
	return cache.Spec{
		Terms:     keywords,
		Weights:   opts.Weights,
		Algo:      algoLabel(opts),
		TopM:      opts.TopM,
		Decay:     decay,
		Proximity: !opts.ProximityOff,
		SumAgg:    opts.SumAggregation,
		TFIDF:     opts.TFIDF,
	}.Key()
}

// storeResult puts one completed query's entry into the result cache
// (no-op when disabled) and refreshes the cache gauges.
func (e *Engine) storeResult(key string, gen uint64, fv *flightEntry) {
	if e.rcache == nil {
		return
	}
	if ev := e.rcache.Put(key, fv, fv.size(key), gen); ev > 0 {
		e.met.resultEvictions.Add(int64(ev))
	}
	cs := e.rcache.Stats()
	e.met.resultBytes.Set(cs.Bytes)
	e.met.resultEntries.Set(int64(cs.Entries))
}

// serveShared answers one caller without executing: from the result
// cache (cached=true) or from another caller's completed flight. The
// request is fully accounted — one queries_total increment, its own
// wall time and slow-log entry — with zero I/O, since the index reads
// happened elsewhere (or never, for a cache hit).
func (e *Engine) serveShared(fv *flightEntry, q string, keywords []string, opts SearchOptions, trace *obs.Trace, start time.Time, cached bool) ([]SearchResult, *QueryStats, error) {
	stats := &QueryStats{
		Algorithm: opts.Algorithm,
		Keywords:  keywords,
		Shards:    fv.shards,
		Cached:    cached,
		Coalesced: !cached,
	}
	e.met.queryStarted()
	if cached {
		e.met.resultHits.Inc()
	} else {
		e.met.coalesced.Inc()
	}
	stats.WallTime = time.Since(start)
	stats.Trace = trace.Spans()
	e.met.queryFinished(algoLabel(opts), q, stats, nil)
	return copyResults(fv.results), stats, nil
}

// executeQuery runs one query for real — private execution context, I/O
// attribution, metrics and slow-log recording — continuing the trace and
// clock the caller started at tokenization.
func (e *Engine) executeQuery(ctx context.Context, q string, keywords []string, opts SearchOptions, trace *obs.Trace, start time.Time) ([]SearchResult, *QueryStats, error) {
	// The snapshot read lock pins the segment set (and the collection,
	// ranks and manifest backing it) for the whole execution: AddDocs
	// and CompactOnce swap those fields only under the write lock, so no
	// cursor opened below can observe a retired segment or a torn
	// snapshot.
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	ec := storage.NewExecContext(ctx)
	if opts.MaxPageReads > 0 {
		ec.SetBudget(opts.MaxPageReads)
	}
	ec.SetSpanRecorder(trace)
	stats := &QueryStats{Algorithm: opts.Algorithm, Keywords: keywords}
	report := &query.ShardReport{}

	e.met.queryStarted()
	out, err := e.searchLoop(keywords, opts, ec, report, stats)

	// The single finish point: successful and failed queries alike get
	// their wall time, I/O attribution, span trace and degradation facts,
	// and are recorded into the engine's metrics registry and slow-query
	// log.
	stats.WallTime = time.Since(start)
	stats.IO = ec.Stats()
	stats.SimulatedTime = storage.DefaultCostModel().SimulatedTime(stats.IO)
	stats.Trace = trace.Spans()
	stats.Degraded = report.Degraded()
	stats.FailedShards = report.FailedShards()
	stats.Retries = report.Retries()
	stats.Probes = report.Probes()
	e.met.unhealthy.Set(int64(e.ix.UnhealthyCount()))
	if err == nil && stats.Degraded && e.cfg.FailOnDegraded {
		// Strict mode: a partial answer is an error. Decided before
		// queryFinished so the metrics and slow log see the failure.
		err = fmt.Errorf("%w (shards %v)", ErrDegraded, stats.FailedShards)
	}
	e.met.queryFinished(algoLabel(opts), q, stats, err)
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// searchLoop runs the over-fetch/materialize loop of one query under its
// execution context. Answer-node collapsing and tombstone filtering
// shrink the raw result set, so it over-fetches when either is active;
// if a full raw result set still collapses below topM, it retries once
// with a larger factor (see the overfetch constants).
func (e *Engine) searchLoop(keywords []string, opts SearchOptions, ec *storage.ExecContext, report *query.ShardReport, stats *QueryStats) ([]SearchResult, error) {
	overfetch := len(e.cfg.AnswerTags) > 0 || e.hasTombstones()
	mult := 1
	if overfetch {
		mult = overfetchBase
	}
	var out []SearchResult
	for {
		qopts := e.queryOptions(opts.TopM * mult)
		if opts.Decay != 0 {
			qopts.Decay = opts.Decay
		}
		if opts.ProximityOff {
			qopts.UseProximity = false
		}
		if opts.SumAggregation {
			qopts.Agg = query.AggSum
		}
		qopts.Weights = opts.Weights
		if opts.TFIDF {
			qopts.Scoring = query.ScoreTFIDF
		}
		qopts.Exec = ec
		qopts.Report = report
		qopts.Retries = e.cfg.ShardRetries
		qopts.RetryBackoff = time.Duration(e.cfg.ShardRetryBackoffMillis) * time.Millisecond
		qopts.RetrySeed = e.cfg.ShardRetrySeed
		qopts.FailureThreshold = e.cfg.ShardFailureThreshold
		qopts.ProbeInterval = time.Duration(e.cfg.ShardProbeIntervalMillis) * time.Millisecond

		endExec := ec.StartSpan("execute")
		rs, naive, err := e.runQuery(keywords, opts, qopts, stats)
		endExec()
		if err != nil {
			return nil, err
		}
		endMat := ec.StartSpan("materialize")
		out, err = e.materialize(rs, naive, opts.TopM)
		endMat()
		if err != nil {
			return nil, err
		}
		if len(out) >= opts.TopM || !overfetch || mult > overfetchBase || len(rs) < qopts.TopM {
			// Done: topM filled, nothing collapsed, already retried, or
			// the raw result set was not even full (fetching more raw
			// results cannot yield more collapsed ones).
			return out, nil
		}
		mult *= overfetchRetry
	}
}

// runQuery dispatches to the selected query processor, reporting whether
// the results are naive (element-granularity) IDs. A fully compacted
// engine (one segment at the current rank version) takes the direct
// path; otherwise the query runs against every live segment and merges
// the per-segment top-m's (see runSegmented).
func (e *Engine) runQuery(keywords []string, opts SearchOptions, qopts query.Options, stats *QueryStats) ([]query.Result, bool, error) {
	stats.Segments = len(e.segs)
	stats.Shards = e.ix.NumShards()
	if len(e.segs) == 1 && e.segs[0].rankVer == e.rankVer {
		return e.runOn(e.ix, keywords, opts, qopts, stats)
	}
	return e.runSegmented(keywords, opts, qopts, stats)
}

// runOn runs one query processor against one segment's index. Every
// processor goes through its sharded executor: on a flat (1-shard)
// index that is a direct call on this goroutine; on a partitioned index
// it fans out one merge per shard under the engine's worker-pool bound,
// with per-shard child execution contexts derived from qopts.Exec.
func (e *Engine) runOn(ix *index.Sharded, keywords []string, opts SearchOptions, qopts query.Options, stats *QueryStats) ([]query.Result, bool, error) {
	workers := e.cfg.ShardWorkers
	if opts.Disjunctive {
		rs, err := query.DisjunctiveSharded(ix, keywords, qopts, workers)
		return rs, false, err
	}
	var (
		rs  []query.Result
		err error
	)
	switch opts.Algorithm {
	case AlgoDIL:
		rs, err = query.DILSharded(ix, keywords, qopts, workers)
	case AlgoRDIL:
		rs, err = query.RDILSharded(ix, keywords, qopts, workers)
	case AlgoHDIL:
		var trace *query.HDILTrace
		rs, trace, err = query.HDILSharded(ix, keywords, qopts, workers, storage.DefaultCostModel())
		if trace != nil {
			stats.SwitchedToDIL = stats.SwitchedToDIL || trace.SwitchedToDIL
		}
	case AlgoNaiveID:
		rs, err = query.NaiveIDSharded(ix, keywords, qopts, workers)
	case AlgoNaiveRank:
		rs, err = query.NaiveRankSharded(ix, keywords, qopts, workers)
	default:
		err = fmt.Errorf("xrank: unknown algorithm %d", opts.Algorithm)
	}
	naive := opts.Algorithm == AlgoNaiveID || opts.Algorithm == AlgoNaiveRank
	return rs, naive, err
}

// runSegmented runs the query against every live segment and merges the
// per-segment top-m's. Each document lives in exactly one segment and
// every scoring decision is intra-document, so each segment's exact
// top-m makes the merged result exact — identical to a from-scratch
// rebuild over the same documents.
//
// Segments whose baked ElemRanks predate the current rank version are
// queried with a rank override substituting the live values (rounded
// through float32, matching what a rebuild would bake). Their
// rank-ordered lists are sorted by the outdated ranks, which makes the
// threshold algorithms unsound there, so stale segments route RDIL and
// HDIL to DIL and Naive-Rank to Naive-ID — same results, document-order
// execution. TFIDF needs no rank override (it never reads the baked
// ranks) but does need collection-global document frequencies and
// element counts, computed here by summing per-segment list lengths.
func (e *Engine) runSegmented(keywords []string, opts SearchOptions, qopts query.Options, stats *QueryStats) ([]query.Result, bool, error) {
	naive := !opts.Disjunctive && (opts.Algorithm == AlgoNaiveID || opts.Algorithm == AlgoNaiveRank)
	if opts.TFIDF {
		kws, err := query.NormalizeKeywords(keywords)
		if err != nil {
			return nil, naive, err
		}
		dfs := make([]int, len(kws))
		for i, kw := range kws {
			for _, s := range e.segs {
				if naive {
					dfs[i] += s.ix.NaiveCount(kw)
				} else {
					dfs[i] += s.ix.DILCount(kw)
				}
			}
		}
		qopts.DFs = dfs
		qopts.NumElements = e.col.NumElements()
	}
	perSeg := make([][]query.Result, 0, len(e.segs))
	for _, s := range e.segs {
		so := qopts
		sopts := opts
		if s.rankVer != e.rankVer {
			if !opts.TFIDF {
				so.Rank = e.rankOverride(naive)
			}
			switch {
			case opts.Disjunctive:
				// The disjunctive merge is document-ordered; the override
				// alone suffices.
			case opts.Algorithm == AlgoRDIL || opts.Algorithm == AlgoHDIL:
				sopts.Algorithm = AlgoDIL
			case opts.Algorithm == AlgoNaiveRank:
				sopts.Algorithm = AlgoNaiveID
			}
		}
		rs, _, err := e.runOn(s.ix, keywords, sopts, so, stats)
		if err != nil {
			return nil, naive, err
		}
		perSeg = append(perSeg, rs)
	}
	return query.MergeTopM(perSeg, qopts.TopM), naive, nil
}

// rankOverride returns the posting-rank substitute for stale segments:
// the current global ElemRank of the posting's element, rounded through
// float32 exactly as index building would bake it.
func (e *Engine) rankOverride(naive bool) func(p *index.Posting) float64 {
	col, ranks := e.col, e.ranks
	if naive {
		return func(p *index.Posting) float64 {
			if int(p.Elem) < 0 || int(p.Elem) >= len(ranks) {
				return 0
			}
			return float64(float32(ranks[p.Elem]))
		}
	}
	return func(p *index.Posting) float64 {
		if len(p.ID) == 0 || int(p.ID[0]) >= len(col.Docs) {
			return 0
		}
		el := col.Docs[p.ID[0]].ElementAt(p.ID)
		if el == nil {
			return 0
		}
		g := col.GlobalIndex(el)
		if g < 0 || g >= len(ranks) {
			return 0
		}
		return float64(float32(ranks[g]))
	}
}

// materialize converts internal results to SearchResults, applying answer
// node mapping and deduplication.
func (e *Engine) materialize(rs []query.Result, naive bool, topM int) ([]SearchResult, error) {
	out := make([]SearchResult, 0, len(rs))
	seen := make(map[string]bool)
	for _, r := range rs {
		var el *xmldoc.Element
		if naive {
			g, err := query.ElemFromResultID(r)
			if err != nil {
				return nil, err
			}
			el = e.col.ElementByGlobalIndex(int(g))
		} else {
			el = e.elementAtID(r.ID)
		}
		if el == nil {
			return nil, fmt.Errorf("xrank: result %v does not resolve to an element", r.ID)
		}
		if e.isDeleted(el.Doc.ID) {
			continue // tombstoned document (Section 4.5)
		}
		if len(e.cfg.AnswerTags) > 0 {
			el = e.answerNodeFor(el)
			if el == nil {
				continue
			}
		}
		id := el.DeweyID().String()
		if seen[id] {
			continue // several raw results collapsed to one answer node
		}
		seen[id] = true
		out = append(out, SearchResult{
			DeweyID: id,
			Score:   r.Score,
			Doc:     el.Doc.Name,
			Path:    xmldoc.Path(el),
			Tag:     el.Tag,
			Snippet: snippet(el),
		})
		if len(out) == topM {
			break
		}
	}
	return out, nil
}

func (e *Engine) hasTombstones() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.deleted) > 0
}

func (e *Engine) isDeleted(docID uint32) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.deleted[docID]
}

// answerNodeFor maps an element to its nearest ancestor-or-self answer
// node (Section 2.2). HTML roots always qualify.
func (e *Engine) answerNodeFor(el *xmldoc.Element) *xmldoc.Element {
	for p := el; p != nil; p = p.Parent {
		if p.Kind == xmldoc.KindHTMLRoot {
			return p
		}
		for _, t := range e.cfg.AnswerTags {
			if p.Tag == t {
				return p
			}
		}
	}
	return nil
}

// snippet extracts up to ~160 characters of text from the element's
// subtree for display.
func snippet(el *xmldoc.Element) string {
	var b strings.Builder
	xmldoc.Walk(el, func(x *xmldoc.Element) bool {
		if x.Text != "" {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(x.Text)
		}
		return b.Len() < snippetBytes
	})
	s := b.String()
	if len(s) > snippetBytes {
		// Truncate on a rune boundary: byte snippetBytes may land inside
		// a multi-byte UTF-8 sequence, and slicing there would emit a
		// broken rune before the ellipsis.
		cut := snippetBytes
		for cut > 0 && !utf8.RuneStart(s[cut]) {
			cut--
		}
		s = s[:cut] + "…"
	}
	return s
}

// snippetBytes bounds a snippet's length in bytes (before the ellipsis).
const snippetBytes = 160

// Ancestors returns the chain of elements from the given result element up
// to its document root (nearest first), supporting the paper's "navigate
// up for context" interaction (Section 2.2).
func (e *Engine) Ancestors(deweyID string) ([]SearchResult, error) {
	el, err := e.elementAt(deweyID)
	if err != nil {
		return nil, err
	}
	var out []SearchResult
	for p := el.Parent; p != nil; p = p.Parent {
		out = append(out, SearchResult{
			DeweyID: p.DeweyID().String(),
			Doc:     p.Doc.Name,
			Path:    xmldoc.Path(p),
			Tag:     p.Tag,
			Snippet: snippet(p),
		})
	}
	return out, nil
}

// Fragment serializes a result element (identified by its dotted Dewey
// ID) back to an XML fragment, up to maxDepth levels deep (0 = all).
// Text that originally interleaved with child elements is emitted before
// them; see xmldoc.WriteXML.
func (e *Engine) Fragment(deweyID string, maxDepth int) (string, error) {
	el, err := e.elementAt(deweyID)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := xmldoc.WriteXML(&b, el, maxDepth); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (e *Engine) elementAt(deweyID string) (*xmldoc.Element, error) {
	id, err := dewey.Parse(deweyID)
	if err != nil {
		return nil, err
	}
	el := e.elementAtID(id)
	if el == nil {
		return nil, fmt.Errorf("xrank: no element %s", deweyID)
	}
	return el, nil
}

func (e *Engine) elementAtID(id dewey.ID) *xmldoc.Element {
	if len(id) == 0 || int(id[0]) >= len(e.col.Docs) {
		return nil
	}
	return e.col.Docs[id[0]].ElementAt(id)
}
