package xrank

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// The result-cache differential harness: an engine serving from the
// result cache (with coalescing enabled) must stay BIT-IDENTICAL — exact
// struct equality, scores included — to a cache-free control engine
// across a randomized interleaving of Search, DeleteDoc and Update, at
// shard counts 1 and 8. A cached result is only ever the verbatim copy
// of a result the control would also compute, so unlike the
// update-differential harness there is no score tolerance here.

// cacheDiffEngines is one cached/control engine pair that the operation
// stream mutates in lockstep.
type cacheDiffEngines struct {
	cached  *Engine
	control *Engine
}

func buildCacheDiffPair(t *testing.T, dir string, shards int, pool map[string]string, docs []string) cacheDiffEngines {
	t.Helper()
	build := func(sub string, cacheBytes int64, coalesce bool) *Engine {
		e := NewEngine(&Config{
			IndexDir:        filepath.Join(dir, sub),
			Shards:          shards,
			CacheBytes:      cacheBytes,
			CoalesceQueries: coalesce,
		})
		for _, name := range docs {
			if err := e.AddXML(name, strings.NewReader(pool[name])); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Build(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	return cacheDiffEngines{
		cached:  build("cached", 1<<20, true),
		control: build("control", 0, false),
	}
}

// searchBoth runs one query on both engines and asserts exact equality,
// returning the cached engine's stats.
func (p cacheDiffEngines) searchBoth(t *testing.T, tag, q string, opts SearchOptions) *QueryStats {
	t.Helper()
	ra, sa, errA := p.cached.SearchDetailed(q, opts)
	rb, _, errB := p.control.SearchDetailed(q, opts)
	if errA != nil || errB != nil {
		t.Fatalf("%s %s %q: errs %v / %v", tag, searchLabel(opts), q, errA, errB)
	}
	if len(ra) != len(rb) {
		t.Fatalf("%s %s %q: %d results vs %d from control", tag, searchLabel(opts), q, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%s %s %q result %d not bit-identical:\ncached  %+v\ncontrol %+v",
				tag, searchLabel(opts), q, i, ra[i], rb[i])
		}
	}
	return sa
}

func TestCacheDifferential(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(20030609 + shards)))
			pool := make(map[string]string)
			for n := 0; n < 12; n++ {
				pool[fmt.Sprintf("doc%02d", n)] = diffDoc(rng, n)
			}
			live := []string{"doc00", "doc01", "doc02", "doc03", "doc04", "doc05"}
			next := 6
			base := t.TempDir()
			p := buildCacheDiffPair(t, filepath.Join(base, "r0"), shards, pool, live)

			round := 0
			for op := 0; op < 40; op++ {
				tag := fmt.Sprintf("op %d", op)
				switch k := rng.Intn(10); {
				case k < 7:
					// Search: a small repeating query set so hits accumulate,
					// often re-issued immediately to guarantee hot pairs
					// regardless of how the stream interleaves invalidations.
					q := diffQueries[rng.Intn(len(diffQueries))]
					opts := diffAlgos[rng.Intn(len(diffAlgos))]
					opts.TopM = 25
					p.searchBoth(t, tag, q, opts)
					if rng.Intn(2) == 0 {
						if st := p.searchBoth(t, tag+" repeat", q, opts); !st.Cached {
							t.Fatalf("%s: immediate repeat of %s %q was not served from cache", tag, searchLabel(opts), q)
						}
					}
				case k < 9:
					// DeleteDoc on both engines. Invalidation is per document
					// now: a warm query whose results mention the victim must
					// execute fresh afterwards, while every query's results
					// stay bit-identical to the control (asserted by
					// searchBoth as usual).
					if len(live) < 2 {
						continue
					}
					victim := live[rng.Intn(len(live))]
					var vn int
					fmt.Sscanf(victim, "doc%d", &vn)
					uq := fmt.Sprintf("uniq%d", vn)
					uopts := SearchOptions{Algorithm: AlgoDIL, TopM: 25}
					p.searchBoth(t, tag+" warm victim", uq, uopts)
					if err := p.cached.DeleteDoc(victim); err != nil {
						t.Fatal(err)
					}
					if err := p.control.DeleteDoc(victim); err != nil {
						t.Fatal(err)
					}
					keep := live[:0]
					for _, n := range live {
						if n != victim {
							keep = append(keep, n)
						}
					}
					live = keep
					if st := p.searchBoth(t, tag+" post-delete victim", uq, uopts); st.Cached {
						t.Fatalf("%s: victim marker query %q served from cache across its DeleteDoc", tag, uq)
					}
					q := diffQueries[rng.Intn(len(diffQueries))]
					p.searchBoth(t, tag+" post-delete", q, SearchOptions{Algorithm: AlgoDIL, TopM: 25})
				default:
					// Update both engines into fresh directories with the same
					// addition; each successor starts with an empty cache.
					if next >= 12 {
						continue
					}
					round++
					name := fmt.Sprintf("doc%02d", next)
					next++
					dir := filepath.Join(base, fmt.Sprintf("r%d", round))
					nc, err := p.cached.Update(filepath.Join(dir, "cached"),
						map[string]io.Reader{name: strings.NewReader(pool[name])})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { nc.Close() })
					ctl, err := p.control.Update(filepath.Join(dir, "control"),
						map[string]io.Reader{name: strings.NewReader(pool[name])})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { ctl.Close() })
					p = cacheDiffEngines{cached: nc, control: ctl}
					live = append(live, name)
				}
			}

			// The stream must actually have exercised the cache.
			cs := p.cached.CacheStats()
			if !cs.Enabled || cs.Hits == 0 {
				t.Fatalf("differential stream never hit the cache: %+v", cs)
			}
			if ctl := p.control.CacheStats(); ctl.Enabled || ctl.Hits != 0 {
				t.Fatalf("control engine has a live cache: %+v", ctl)
			}

			// Term canonicalization end to end: a permuted, duplicated
			// spelling of a just-executed query is a hit.
			opts := SearchOptions{Algorithm: AlgoDIL, TopM: 25}
			p.searchBoth(t, "canonical warm", "alpha beta", opts)
			if st := p.searchBoth(t, "canonical permuted", "beta alpha beta", opts); !st.Cached {
				t.Fatal("permuted duplicate spelling of a warm query missed the cache")
			}
		})
	}
}

// TestCacheStaleNeverServed pins the invalidation protocol directly:
// DeleteDoc evicts exactly the cached entries whose results mention the
// victim (unrelated hot entries keep hitting), a fresh execution
// repopulates the cache, and ColdCache still invalidates everything via
// the generation bump.
func TestCacheStaleNeverServed(t *testing.T) {
	pool := make(map[string]string)
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 6; n++ {
		pool[fmt.Sprintf("doc%02d", n)] = diffDoc(rng, n)
	}
	e := NewEngine(&Config{IndexDir: t.TempDir(), CacheBytes: 1 << 20})
	for n := 0; n < 6; n++ {
		name := fmt.Sprintf("doc%02d", n)
		if err := e.AddXML(name, strings.NewReader(pool[name])); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	search := func(tag, q string) ([]SearchResult, *QueryStats) {
		t.Helper()
		rs, st, err := e.SearchDetailed(q, SearchOptions{TopM: 10})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return rs, st
	}
	// uniqN occurs only in docN, so "uniq1" results mention exactly doc01
	// and "uniq2" exactly doc02.
	if _, st := search("cold victim", "uniq1"); st.Cached {
		t.Fatal("first query served from an empty cache")
	}
	if _, st := search("warm victim", "uniq1"); !st.Cached {
		t.Fatal("repeat query missed the cache")
	}
	search("warm unrelated", "uniq2")
	if _, st := search("warm unrelated", "uniq2"); !st.Cached {
		t.Fatal("repeat unrelated query missed the cache")
	}
	if err := e.DeleteDoc("doc01"); err != nil {
		t.Fatal(err)
	}
	rs, st := search("post-delete victim", "uniq1")
	if st.Cached {
		t.Fatal("stale result served across DeleteDoc of its only document")
	}
	if len(rs) != 0 {
		t.Fatalf("deleted document still surfaced: %+v", rs)
	}
	if _, st := search("post-delete unrelated", "uniq2"); !st.Cached {
		t.Fatal("DeleteDoc of doc01 evicted the unrelated doc02 entry")
	}
	if _, st := search("rewarm victim", "uniq1"); !st.Cached {
		t.Fatal("post-delete result was not re-cached")
	}
	if err := e.ColdCache(); err != nil {
		t.Fatal(err)
	}
	if _, st := search("post-coldcache", "uniq2"); st.Cached {
		t.Fatal("stale result served across ColdCache")
	}
	if st := e.CacheStats(); st.Stale < 1 {
		t.Fatalf("expected >= 1 stale drop, got %+v", st)
	}
	if st := e.CacheStats(); st.Evictions < 1 {
		t.Fatalf("expected >= 1 per-document eviction, got %+v", st)
	}
}
