// Package xrank implements ranked keyword search over hyperlinked XML and
// HTML documents, reproducing the XRANK system of Guo, Shao, Botev and
// Shanmugasundaram (SIGMOD 2003).
//
// XRANK answers conjunctive keyword queries with the most specific XML
// elements that contain all keywords, ranked by ElemRank — a PageRank
// generalization computed at element granularity over hyperlink and
// containment edges — scaled by result specificity and two-dimensional
// keyword proximity. On a two-level corpus (HTML pages with links) it
// degenerates exactly to a PageRank-style HTML search engine, so mixed
// XML/HTML collections work in one framework.
//
// Basic use:
//
//	e := xrank.NewEngine(nil)
//	e.AddXML("proceedings", xmlReader)
//	info, err := e.Build()
//	results, err := e.Search("xql language")
//
// The engine persists its indexes (and the source documents) in the
// configured directory; xrank.OpenEngine reopens it later.
package xrank

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xrank/internal/cache"
	"xrank/internal/elemrank"
	"xrank/internal/index"
	"xrank/internal/query"
	"xrank/internal/storage"
	"xrank/internal/text"
	"xrank/internal/xmldoc"
)

// Config tunes an Engine. The zero value (or nil) selects the paper's
// experimental settings.
type Config struct {
	// IndexDir is where the index files and document store live. Empty
	// means a fresh temporary directory (removed on Close).
	IndexDir string

	// D1, D2 and D3 are the ElemRank navigation probabilities for
	// hyperlinks, forward containment and reverse containment
	// (Section 3.2 defaults: 0.35, 0.25, 0.25). All zero selects the
	// defaults.
	D1, D2, D3 float64
	// Epsilon is the ElemRank convergence threshold (default 0.00002).
	Epsilon float64
	// ElemRankVariant selects the formula from the Section 3.1 refinement
	// series, for ablation studies: "final" (default), "pagerank",
	// "bidirectional" or "discriminated".
	ElemRankVariant string

	// Decay is the per-level rank decay for result specificity
	// (Section 2.3.2.1), in (0,1]. Default 0.75.
	Decay float64
	// DisableProximity makes the keyword proximity factor constantly 1,
	// the paper's recommendation for highly structured datasets.
	DisableProximity bool

	// RankFraction and MaxPositions are index layout knobs; see
	// the DESIGN document. Zero selects defaults (0.10, 1024).
	RankFraction float64
	MaxPositions int
	// SkipNaive omits the naive baseline indexes (smaller, faster builds).
	SkipNaive bool
	// CompressDewey prefix-compresses Dewey IDs inside the postings (an
	// extension beyond the paper): each entry stores only the suffix
	// relative to its page-local predecessor. Identical query results,
	// smaller lists.
	CompressDewey bool
	// BlockPostings selects the block postings format (format version 2):
	// the Dewey-family inverted lists are written as fixed-size blocks of
	// delta-coded entries with a per-term skip index recording each
	// block's entry count, max ElemRank and Dewey ID range. Queries use
	// the summaries to skip whole blocks — threshold stops in RDIL/HDIL
	// and document leapfrogs in DIL — without decoding them. Query
	// results are bit-identical to the v1 format; indexes written with
	// either format open with either setting (the format is recorded in
	// the index metadata). Applies to Build, AddDocs segments and
	// compaction output.
	BlockPostings bool
	// PoolPages is the per-file buffer pool capacity in pages (default 128).
	PoolPages int

	// Shards partitions the index by the Dewey document-ID component:
	// each document's postings live entirely in shard
	// index.ShardOf(doc, Shards), and queries run one merge per shard in
	// parallel, combining the per-shard top-m's. Results — scores, order,
	// tie-breaks — are identical for every shard count; see DESIGN.md.
	// Zero or one builds the flat single-directory layout.
	Shards int
	// ShardWorkers bounds the per-query worker pool for sharded
	// execution. Zero means one worker per shard (clamped to GOMAXPROCS).
	ShardWorkers int

	// AnswerTags optionally restricts results to elements with these tags
	// (the pre-defined answer nodes of Section 2.2). Each raw result is
	// mapped to its nearest ancestor-or-self answer node; HTML documents'
	// roots are always answer nodes. Empty means every element is an
	// answer node.
	AnswerTags []string

	// SlowQueryMillis is the slow-query log threshold in milliseconds:
	// queries whose wall time reaches it are recorded (see Engine.SlowLog).
	// Zero selects the default (250 ms); negative disables the log.
	SlowQueryMillis int
	// SlowLogSize caps how many entries the slow-query ring log keeps
	// (default 128); older entries are overwritten.
	SlowLogSize int

	// FailOnDegraded makes queries fail with ErrDegraded instead of
	// returning partial results when index shards had to be excluded
	// (device faults, unhealthy shards). The default serves the healthy
	// remainder with QueryStats.Degraded set.
	FailOnDegraded bool
	// ShardRetries is how many times a shard execution is retried after a
	// transient device fault before the shard is excluded from the query.
	// Zero selects the default (2); negative disables retries.
	ShardRetries int
	// ShardRetryBackoffMillis caps the wait before the first shard retry
	// in milliseconds; the cap doubles per attempt and the actual wait is
	// drawn uniformly from [0, cap] (exponential backoff with full
	// jitter), so synchronized queries retrying against one recovering
	// device spread out instead of stampeding. Zero selects the default
	// cap (5).
	ShardRetryBackoffMillis int
	// ShardRetrySeed seeds the jittered backoff draw stream (per shard),
	// making retry schedules reproducible in tests. Zero selects seed 1.
	ShardRetrySeed int64
	// ShardFailureThreshold is the consecutive post-retry failure count at
	// which a shard is marked unhealthy and excluded from subsequent
	// queries until ResetShardHealth. Zero selects the default (3);
	// negative disables marking.
	ShardFailureThreshold int
	// ShardProbeIntervalMillis enables half-open recovery for unhealthy
	// shards: once per interval an excluded shard is granted one trial
	// execution inside a regular query, and a successful trial re-admits
	// it without an operator ResetShardHealth. Each granted trial counts
	// in xrank_shard_probes_total. Zero (the default) keeps exclusion
	// sticky until ResetShardHealth.
	ShardProbeIntervalMillis int

	// CacheBytes bounds the in-memory query result cache: repeated
	// queries with the same canonical fingerprint (normalized keywords +
	// algorithm + k + ranking options) are answered from memory without
	// touching the index. Entries are guarded by the engine's generation
	// counter — Build, AddDocs and ColdCache bump it, while DeleteDoc
	// evicts only the entries mentioning the deleted document, so a
	// stale result is never served. Zero (the default) disables the cache;
	// the serve command enables a 32 MiB cache unless told otherwise.
	// Degraded (partial-shard) results are never cached.
	CacheBytes int64
	// CoalesceQueries collapses concurrent identical queries into one
	// execution (singleflight): N callers asking the same canonical
	// query share one merge, each still honoring its own context
	// deadline. Off by default; the serve command turns it on.
	CoalesceQueries bool
	// MaxInflightQueries and AdmissionQueue are the HTTP server's
	// admission-control defaults (overridable by serve flags): at most
	// MaxInflightQueries /api/search requests execute concurrently, up
	// to AdmissionQueue more wait for a slot (0 selects 2× the inflight
	// bound, negative disables queueing), and the rest are shed with
	// 429 + Retry-After. Zero MaxInflightQueries disables admission
	// control. The engine itself does not enforce these; see cmd/xrank.
	MaxInflightQueries int
	AdmissionQueue     int

	// SuggestDisabled turns off the prefix-autosuggest subsystem: no
	// suggest.bin dictionaries are built or persisted alongside
	// segments, and Engine.Suggest fails with ErrSuggestDisabled. The
	// default (false) builds a per-segment radix-trie dictionary scored
	// by ElemRank-weighted term frequency; see suggest.go.
	SuggestDisabled bool
	// SuggestMaxK caps the completion count a single Suggest call may
	// request (k above it is clamped). Zero selects the default (50).
	SuggestMaxK int

	// MaxSegments, CompactIntervalMillis and CompactBudgetPages are the
	// background compactor's serve-command defaults (see
	// Engine.StartCompactor): when more than MaxSegments live segments
	// have accumulated from incremental AddDocs batches, they are merged
	// back into one, issuing at most CompactBudgetPages pages of write
	// I/O per compaction (0 = unmetered). The engine itself never starts
	// the compactor; CompactOnce is always available for explicit
	// control. Zero MaxSegments selects the serve default (4).
	MaxSegments           int
	CompactIntervalMillis int
	CompactBudgetPages    int64

	// FS is the file system every persisted artifact goes through (nil =
	// the real file system). Fault-injection and crash-simulation tests
	// substitute a storage.FaultFS. Not persisted in the manifest.
	FS storage.FS `json:"-"`
}

func (c *Config) fill() {
	if c.D1 == 0 && c.D2 == 0 && c.D3 == 0 {
		c.D1, c.D2, c.D3 = 0.35, 0.25, 0.25
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.00002
	}
	if c.Decay == 0 {
		c.Decay = 0.75
	}
}

// ErrBudgetExceeded is returned (wrapped) by SearchContext when a query
// exhausts its SearchOptions.MaxPageReads budget of device page reads.
var ErrBudgetExceeded = storage.ErrBudgetExceeded

// ErrDegraded is returned (wrapped) by SearchContext when index shards
// had to be excluded from the query and Config.FailOnDegraded demands
// all-or-nothing answers.
var ErrDegraded = errors.New("xrank: degraded: unhealthy shards excluded")

// ErrCorrupt is wrapped by every checksum, size or format-version
// mismatch OpenEngine detects in persisted state.
var ErrCorrupt = storage.ErrCorrupt

// Engine is an XRANK search engine over one document collection.
//
// Once built, an Engine serves queries concurrently: any number of
// Search/SearchTop/SearchDetailed/SearchContext calls may run in
// parallel, and DeleteDoc may interleave with them. Each query runs
// under a private storage.ExecContext, so its QueryStats.IO is exactly
// its own page traffic regardless of concurrency. The engine-global
// facilities — ColdCache, IOStats, the shared buffer pools — are
// intentionally not per-query: see their docs for what they mean while
// queries are in flight.
type Engine struct {
	cfg     Config
	col     *xmldoc.Collection
	ranks   []float64
	ix      *index.Sharded // base segment's index (segs[0].ix)
	tempDir bool
	built   bool
	docs    []docEntry // document store manifest
	met     *engineMetrics

	// snapMu guards the queryable snapshot: col, ranks, ix, docs, segs,
	// rankVer and nextSeg. Queries hold the read lock for their entire
	// execution; AddDocs and CompactOnce take the write lock only for
	// the in-memory field swap after their manifest has committed, so
	// acquiring it doubles as the drain barrier proving no in-flight
	// query still pins cursors into a retired segment. Lock order:
	// snapMu before mu.
	snapMu sync.RWMutex
	// updateMu serializes the mutators (AddDocs, DeleteDoc, CompactOnce)
	// against each other without blocking queries.
	updateMu sync.Mutex

	// segs are the live immutable index segments in commit order;
	// segs[0] is the original Build output. See segment.go.
	segs []*engineSegment
	// rankVer is the global ElemRank version; each AddDocs batch
	// recomputes every element's rank and bumps it.
	rankVer int
	// nextSeg is the next unused segment ID.
	nextSeg int
	// segmented reports segments.json exists and is the commit point
	// (true after the first AddDocs or after reopening a segmented
	// layout); until then engine.json alone describes the engine.
	segmented bool

	// compactStop/compactDone manage the background compactor goroutine
	// (see StartCompactor).
	compactStop chan struct{}
	compactDone chan struct{}

	// mu guards deleted. Queries may run concurrently; DeleteDoc may run
	// concurrently with them.
	mu sync.RWMutex
	// deleted holds tombstoned document IDs; their elements are filtered
	// from results at query time (Section 4.5).
	deleted map[uint32]bool

	// gen is the cache-invalidation generation: result-cache entries
	// are stored under the generation current when their execution
	// began, and served only while it is still current. Build, AddDocs
	// and ColdCache bump it — O(1) whole-cache invalidation. DeleteDoc
	// does not: it evicts exactly the cached results that mention the
	// tombstoned document (see invalidateDocResults).
	gen atomic.Uint64
	// rcache is the query result cache (nil when Config.CacheBytes
	// leaves it disabled).
	rcache *cache.Cache
	// flights coalesces concurrent identical queries when
	// Config.CoalesceQueries is set.
	flights cache.Group
}

type docEntry struct {
	Name    string `json:"name"`
	File    string `json:"file"`
	HTML    bool   `json:"html"`
	Deleted bool   `json:"deleted,omitempty"`
	// Size and CRC32 checksum the document-store file so OpenEngine can
	// detect a truncated or bit-rotted source document before reparsing it.
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`

	raw []byte `json:"-"` // pending document-store bytes (until Build)
}

// BuildInfo summarizes a Build: the ElemRank computation and the on-disk
// index component sizes (the Table 1 measurements).
type BuildInfo struct {
	NumDocs            int
	NumElements        int
	Terms              int
	ElemRankIterations int
	ElemRankConverged  bool
	ElemRankTime       time.Duration
	IndexBuildTime     time.Duration
	Sizes              index.BuildStats
	DanglingLinks      int
	ResolvedLinks      int
}

// NewEngine creates an empty engine. A nil cfg selects all defaults.
func NewEngine(cfg *Config) *Engine {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	c.fill()
	e := &Engine{cfg: c, col: xmldoc.NewCollection(), met: newEngineMetrics(&c)}
	if c.CacheBytes > 0 {
		e.rcache = cache.New(c.CacheBytes, 0)
	}
	return e
}

// AddXML parses and adds an XML document under a collection-unique name
// (the name is the target of XLink references). Must precede Build.
func (e *Engine) AddXML(name string, r io.Reader) error {
	return e.add(name, r, false)
}

// AddHTML parses and adds an HTML document. HTML pages are modeled as a
// single element (presentation structure dropped), so they behave like
// classic web search documents.
func (e *Engine) AddHTML(name string, r io.Reader) error {
	return e.add(name, r, true)
}

// AddFile adds a document from disk, deciding XML vs HTML by extension
// (.html/.htm are HTML). The file's base name becomes the document name.
func (e *Engine) AddFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ext := filepath.Ext(path)
	name := filepath.Base(path)
	if ext == ".html" || ext == ".htm" {
		return e.AddHTML(name, f)
	}
	return e.AddXML(name, f)
}

func (e *Engine) add(name string, r io.Reader, html bool) error {
	if e.built {
		return fmt.Errorf("xrank: collection is sealed after Build (document-granularity updates require a rebuild; see Section 4.5)")
	}
	// Tee the raw bytes into the document store so the engine can be
	// reopened later.
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("xrank: read %s: %w", name, err)
	}
	if html {
		_, err = e.col.AddHTML(name, bytesReader(raw), nil)
	} else {
		_, err = e.col.AddXML(name, bytesReader(raw), nil)
	}
	if err != nil {
		return err
	}
	e.docs = append(e.docs, docEntry{Name: name, HTML: html, raw: raw})
	return nil
}

// computeRanks runs the configured ElemRank computation over col. Both
// Build and AddDocs use it: ElemRank is a global fixpoint, so every
// incremental batch recomputes it over the whole grown collection.
func (e *Engine) computeRanks(col *xmldoc.Collection) (*elemrank.Result, xmldoc.LinkStats, error) {
	g, linkStats := elemrank.BuildGraph(col)
	p := elemrank.DefaultParams()
	p.D1, p.D2, p.D3, p.Epsilon = e.cfg.D1, e.cfg.D2, e.cfg.D3, e.cfg.Epsilon
	switch e.cfg.ElemRankVariant {
	case "", "final":
		p.Variant = elemrank.VariantFinal
	case "pagerank":
		p.Variant = elemrank.VariantPageRank
	case "bidirectional":
		p.Variant = elemrank.VariantBidirectional
	case "discriminated":
		p.Variant = elemrank.VariantDiscriminated
	default:
		return nil, linkStats, fmt.Errorf("xrank: unknown ElemRank variant %q", e.cfg.ElemRankVariant)
	}
	res, err := elemrank.Compute(g, p)
	if err != nil {
		return nil, linkStats, err
	}
	return res, linkStats, nil
}

// Build computes ElemRanks and constructs all disk indexes. The collection
// is sealed afterwards; incremental AddDocs batches land in delta
// segments on top of the index Build produces (segment 0).
func (e *Engine) Build() (*BuildInfo, error) {
	if e.built {
		return nil, fmt.Errorf("xrank: already built")
	}
	if e.col.NumDocs() == 0 {
		return nil, fmt.Errorf("xrank: no documents added")
	}
	dir := e.cfg.IndexDir
	if dir == "" {
		td, err := os.MkdirTemp("", "xrank-*")
		if err != nil {
			return nil, err
		}
		dir, e.cfg.IndexDir, e.tempDir = td, td, true
	}

	info := &BuildInfo{NumDocs: e.col.NumDocs(), NumElements: e.col.NumElements()}

	t0 := time.Now()
	res, linkStats, err := e.computeRanks(e.col)
	if err != nil {
		return nil, err
	}
	info.DanglingLinks = linkStats.Dangling
	info.ResolvedLinks = linkStats.Resolved
	info.ElemRankTime = time.Since(t0)
	info.ElemRankIterations = res.Iterations
	info.ElemRankConverged = res.Converged
	e.ranks = res.Scores

	t1 := time.Now()
	stats, err := index.BuildSharded(e.col, e.ranks, dir, index.BuildOptions{
		RankFraction:  e.cfg.RankFraction,
		MaxPositions:  e.cfg.MaxPositions,
		SkipNaive:     e.cfg.SkipNaive,
		CompressDewey: e.cfg.CompressDewey,
		BlockPostings: e.cfg.BlockPostings,
		FS:            e.cfg.FS,
	}, e.cfg.Shards)
	if err != nil {
		return nil, err
	}
	info.IndexBuildTime = time.Since(t1)
	info.Sizes = *stats
	info.Terms = stats.Meta.Terms

	// The suggest dictionary lands before engine.json (the commit
	// point), so a crash mid-write leaves an unreferenced orphan and a
	// committed directory always has a matching trie.
	var sug *suggestTrie
	if !e.cfg.SuggestDisabled {
		ids := make([]uint32, e.col.NumDocs())
		for i := range ids {
			ids[i] = uint32(i)
		}
		sug = buildSegmentSuggest(e.col, e.ranks, ids)
		if err := e.writeSegmentSuggest(dir, sug); err != nil {
			return nil, err
		}
	}

	if err := e.persist(dir); err != nil {
		return nil, err
	}
	ix, err := index.OpenSharded(dir, index.OpenOptions{PoolPages: e.cfg.PoolPages, FS: e.cfg.FS})
	if err != nil {
		return nil, err
	}
	e.initBaseSegment(ix, sug)
	e.built = true
	e.met.shards.Set(int64(ix.NumShards()))
	e.gen.Add(1) // anything cached against the pre-build engine is void
	return info, nil
}

// Close stops the background compactor, releases every segment's index
// files, and removes the index directory if it was a temporary one.
func (e *Engine) Close() error {
	e.stopCompactor()
	var err error
	for _, s := range e.segs {
		if cerr := s.ix.Close(); err == nil {
			err = cerr
		}
	}
	if len(e.segs) == 0 && e.ix != nil {
		err = e.ix.Close()
	}
	e.segs, e.ix = nil, nil
	if e.tempDir {
		os.RemoveAll(e.cfg.IndexDir)
	}
	return err
}

// ColdCache drops all index buffer pools and I/O counters, simulating the
// paper's cold-operating-system-cache measurement protocol. It is an
// engine-global, single-tenant measurement knob: calling it while other
// queries run is race-free but evicts their cached pages and resets the
// global counters mid-flight (per-query QueryStats.IO is unaffected).
func (e *Engine) ColdCache() error {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	if e.ix == nil {
		return fmt.Errorf("xrank: not built")
	}
	// A cold measurement must not be answered from the result cache
	// either: bump the generation so prior results read as stale.
	e.gen.Add(1)
	var err error
	for _, s := range e.segs {
		if cerr := s.ix.ColdCache(); err == nil {
			err = cerr
		}
	}
	return err
}

// IOStats returns cumulative page-level I/O statistics since the last
// ColdCache, summed across every query served. For a single query's I/O
// under concurrency, use the QueryStats returned by SearchContext
// instead of diffing IOStats snapshots.
func (e *Engine) IOStats() storage.Stats {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	var st storage.Stats
	for _, s := range e.segs {
		st.Add(s.ix.IOStats())
	}
	return st
}

// Collection and index accessors for the benchmark harness and tests.

// NumDocs returns the number of documents.
func (e *Engine) NumDocs() int { return e.col.NumDocs() }

// NumElements returns the number of element nodes.
func (e *Engine) NumElements() int { return e.col.NumElements() }

// NumShards returns the number of index partitions (1 for a flat index,
// 0 before Build).
func (e *Engine) NumShards() int {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	if e.ix == nil {
		return 0
	}
	return e.ix.NumShards()
}

// ShardIOStats returns cumulative page-level I/O statistics per shard
// of the base segment since the last ColdCache, in shard order (nil
// before Build). Like IOStats, these are engine-global counters summed
// over every query.
func (e *Engine) ShardIOStats() []storage.Stats {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	if e.ix == nil {
		return nil
	}
	return e.ix.ShardIOStats()
}

// ShardHealth returns every shard's availability snapshot, in shard
// order (nil before Build): whether it serves queries, its
// consecutive-failure streak, and the last error that excluded it.
func (e *Engine) ShardHealth() []index.ShardHealth {
	if e.ix == nil {
		return nil
	}
	return e.ix.Health()
}

// ResetShardHealth returns every shard to the healthy state — the
// operator's lever after replacing or remounting a failed device.
func (e *Engine) ResetShardHealth() {
	if e.ix == nil {
		return
	}
	e.ix.ResetHealth()
	e.met.unhealthy.Set(0)
}

// SetFailOnDegraded flips Config.FailOnDegraded at runtime (the serve
// command's -fail-on-degraded flag overrides the persisted config). Call
// before serving queries; it is not synchronized with in-flight searches.
func (e *Engine) SetFailOnDegraded(v bool) { e.cfg.FailOnDegraded = v }

// ConfigureResultCache replaces the query result cache with one bounded
// to the given byte size (<= 0 disables it), discarding all cached
// results. Like SetFailOnDegraded it is a pre-serving knob: call it
// before queries are in flight.
func (e *Engine) ConfigureResultCache(bytes int64) {
	e.cfg.CacheBytes = bytes
	if bytes > 0 {
		e.rcache = cache.New(bytes, 0)
	} else {
		e.rcache = nil
	}
}

// SetCoalesceQueries flips Config.CoalesceQueries at runtime (the serve
// command's -coalesce flag). Call before serving queries.
func (e *Engine) SetCoalesceQueries(v bool) { e.cfg.CoalesceQueries = v }

// Generation returns the engine's cache-invalidation generation. Build,
// AddDocs and ColdCache bump it (DeleteDoc instead evicts the entries
// that mention the deleted document); result-cache entries from an
// older generation are never served.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// CacheStats describes the query result cache and coalescing activity.
type CacheStats struct {
	// Enabled reports whether a result cache is configured.
	Enabled bool `json:"enabled"`
	// Capacity, Bytes and Entries describe occupancy; Hits, Misses,
	// Stale and Evictions are cumulative counters (Stale counts lookups
	// that found an entry from an older generation and dropped it).
	Capacity  int64 `json:"capacity_bytes"`
	Bytes     int64 `json:"bytes"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stale     int64 `json:"stale"`
	Evictions int64 `json:"evictions"`
	// Coalesced counts queries served by joining another caller's
	// in-flight execution rather than running their own.
	Coalesced int64 `json:"coalesced"`
	// Generation is the current cache-invalidation generation.
	Generation uint64 `json:"generation"`
}

// CacheStats snapshots the result cache's counters (all zero, Enabled
// false, when the cache is disabled; Coalesced counts even then).
func (e *Engine) CacheStats() CacheStats {
	st := CacheStats{
		Coalesced:  e.met.coalesced.Value(),
		Generation: e.gen.Load(),
	}
	if e.rcache == nil {
		return st
	}
	cs := e.rcache.Stats()
	st.Enabled = true
	st.Capacity = cs.Capacity
	st.Bytes = cs.Bytes
	st.Entries = cs.Entries
	st.Hits = cs.Hits
	st.Misses = cs.Misses
	st.Stale = cs.Stale
	st.Evictions = cs.Evictions
	return st
}

// Config returns a copy of the engine's effective configuration (the
// serve command reads the admission-control defaults from it).
func (e *Engine) Config() Config { return e.cfg }

// fs returns the engine's file system (the real one unless Config.FS
// substitutes a faulty double).
func (e *Engine) fs() storage.FS { return storage.DefaultFS(e.cfg.FS) }

// ElemRank returns the computed ElemRank of the element identified by the
// dotted Dewey ID (e.g. "0.2.1"), or an error if it does not exist.
func (e *Engine) ElemRank(deweyID string) (float64, error) {
	el, err := e.elementAt(deweyID)
	if err != nil {
		return 0, err
	}
	return e.ranks[e.col.GlobalIndex(el)], nil
}

// queryOptions converts engine config to query options.
func (e *Engine) queryOptions(topM int) query.Options {
	o := query.DefaultOptions()
	o.TopM = topM
	o.Decay = e.cfg.Decay
	o.UseProximity = !e.cfg.DisableProximity
	return o
}

// tokenizeQuery splits a free-text query into normalized keywords.
func tokenizeQuery(q string) []string { return text.Tokenize(q) }

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
