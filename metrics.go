package xrank

import (
	"time"

	"xrank/internal/obs"
)

// Default slow-query log settings; see Config.SlowQueryMillis and
// Config.SlowLogSize.
const (
	defaultSlowQueryThreshold = 250 * time.Millisecond
	defaultSlowLogSize        = 128
)

// engineMetrics wires one engine's observability: the metrics registry
// served at /metrics and the bounded slow-query log served at
// /api/slowlog. Every handle is safe for concurrent use, so query
// goroutines record without coordination.
//
// Per-algorithm and per-stage series are resolved through the registry
// on each query (a get-or-create map lookup); the label-free handles
// below are resolved once at construction.
type engineMetrics struct {
	reg  *obs.Registry
	slow *obs.SlowLog

	pageReads    *obs.Counter
	seqReads     *obs.Counter
	randReads    *obs.Counter
	cacheHits    *obs.Counter
	blocksRead   *obs.Counter
	blocksSkip   *obs.Counter
	slowTotal    *obs.Counter
	switches     *obs.Counter
	degraded     *obs.Counter
	shardRetries *obs.Counter
	shardProbes  *obs.Counter
	shards       *obs.Gauge
	unhealthy    *obs.Gauge
	inflight     *obs.Gauge

	// Segment lifecycle series (see segment.go and compact.go).
	segments        *obs.Gauge
	compactions     *obs.Counter
	compactionBytes *obs.Counter

	// Result-cache and coalescing series. The xrank_cache_hits_total
	// family above predates the result cache and counts buffer-pool page
	// hits; these count whole-query reuse ("result" in the name keeps
	// the two apart).
	resultHits      *obs.Counter
	resultMisses    *obs.Counter
	resultStale     *obs.Counter
	resultEvictions *obs.Counter
	resultBytes     *obs.Gauge
	resultEntries   *obs.Gauge
	coalesced       *obs.Counter

	// Autosuggest series (see suggest.go).
	suggestQueries *obs.Counter
	suggestEmpty   *obs.Counter
	suggestNodes   *obs.Counter
	suggestTerms   *obs.Gauge
}

// Metric family names and help strings, shared by the per-query
// recording path and by anyone reading the exposition.
const (
	metricQueries     = "xrank_queries_total"
	metricQueryErrors = "xrank_query_errors_total"
	metricLatency     = "xrank_query_latency_seconds"
	metricStage       = "xrank_query_stage_seconds"

	helpQueries     = "Queries served, by algorithm (including failed ones)."
	helpQueryErrors = "Queries that ended in an error, by algorithm."
	helpLatency     = "End-to-end wall time of successful queries, by algorithm."
	helpStage       = "Per-stage time within queries, by span name."
)

func newEngineMetrics(cfg *Config) *engineMetrics {
	threshold := time.Duration(cfg.SlowQueryMillis) * time.Millisecond
	switch {
	case cfg.SlowQueryMillis == 0:
		threshold = defaultSlowQueryThreshold
	case cfg.SlowQueryMillis < 0:
		threshold = -1 // disabled
	}
	size := cfg.SlowLogSize
	if size <= 0 {
		size = defaultSlowLogSize
	}
	r := obs.NewRegistry()
	return &engineMetrics{
		reg:          r,
		slow:         obs.NewSlowLog(size, threshold),
		pageReads:    r.Counter("xrank_page_reads_total", "Device page reads attributed to queries."),
		seqReads:     r.Counter("xrank_seq_reads_total", "Query page reads classified sequential."),
		randReads:    r.Counter("xrank_rand_reads_total", "Query page reads classified random."),
		cacheHits:    r.Counter("xrank_cache_hits_total", "Query page accesses absorbed by a buffer pool."),
		blocksRead:   r.Counter("xrank_blocks_decoded_total", "Posting blocks decoded by queries (block postings format only)."),
		blocksSkip:   r.Counter("xrank_blocks_skipped_total", "Posting blocks skipped whole by pruning (block postings format only)."),
		slowTotal:    r.Counter("xrank_slow_queries_total", "Queries at or above the slow-query threshold."),
		switches:     r.Counter("xrank_hdil_switches_total", "HDIL queries where at least one shard switched to DIL."),
		degraded:     r.Counter("xrank_degraded_queries_total", "Queries served with at least one shard excluded."),
		shardRetries: r.Counter("xrank_shard_retries_total", "Shard executions retried after a transient device fault."),
		shardProbes:  r.Counter("xrank_shard_probes_total", "Half-open trial executions granted to unhealthy shards."),
		shards:       r.Gauge("xrank_index_shards", "Index partitions the engine fans queries out over."),
		unhealthy:    r.Gauge("xrank_shard_unhealthy", "Shards currently marked unhealthy and excluded from queries."),
		inflight:     r.Gauge("xrank_inflight_queries", "Queries currently executing."),

		segments:        r.Gauge("xrank_segments", "Live index segments the engine merges at query time."),
		compactions:     r.Counter("xrank_compactions_total", "Segment compactions completed."),
		compactionBytes: r.Counter("xrank_compaction_bytes_total", "Bytes of merged index files written by compactions."),

		resultHits:      r.Counter("xrank_cache_result_hits_total", "Queries answered from the result cache."),
		resultMisses:    r.Counter("xrank_cache_result_misses_total", "Cacheable queries that missed the result cache."),
		resultStale:     r.Counter("xrank_cache_result_stale_total", "Result-cache lookups that dropped an entry from an older generation."),
		resultEvictions: r.Counter("xrank_cache_result_evictions_total", "Result-cache entries evicted to stay under the byte bound."),
		resultBytes:     r.Gauge("xrank_cache_result_bytes", "Bytes resident in the result cache."),
		resultEntries:   r.Gauge("xrank_cache_result_entries", "Entries resident in the result cache."),
		coalesced:       r.Counter("xrank_coalesced_queries_total", "Queries served by joining another caller's in-flight execution."),

		suggestQueries: r.Counter("xrank_suggest_queries_total", "Autosuggest completions served (including empty ones)."),
		suggestEmpty:   r.Counter("xrank_suggest_empty_total", "Autosuggest completions that matched no dictionary term."),
		suggestNodes:   r.Counter("xrank_suggest_nodes_visited_total", "Radix-trie nodes expanded by best-first completion searches."),
		suggestTerms:   r.Gauge("xrank_suggest_terms", "Distinct terms in the live segments' suggest dictionaries (summed per segment)."),
	}
}

// algoLabel is the metrics label for one query's strategy. Disjunctive
// queries ignore SearchOptions.Algorithm, so they get their own label
// rather than being misattributed to the default processor.
func algoLabel(opts SearchOptions) string {
	if opts.Disjunctive {
		return "Disjunctive"
	}
	return opts.Algorithm.String()
}

// queryStarted marks one query in flight.
func (m *engineMetrics) queryStarted() { m.inflight.Add(1) }

// queryFinished records one completed query — successful or not — into
// the registry and, if slow enough (or failed and slow enough), the
// slow-query log. stats must have its WallTime/IO/Trace fields filled.
func (m *engineMetrics) queryFinished(algo, q string, stats *QueryStats, err error) {
	m.inflight.Add(-1)
	m.reg.Counter(metricQueries, helpQueries, "algo", algo).Inc()
	m.pageReads.Add(stats.IO.Reads)
	m.seqReads.Add(stats.IO.SeqReads)
	m.randReads.Add(stats.IO.RandReads)
	m.cacheHits.Add(stats.IO.CacheHits)
	m.blocksRead.Add(stats.IO.BlocksDecoded)
	m.blocksSkip.Add(stats.IO.BlocksSkipped)
	if stats.SwitchedToDIL {
		m.switches.Inc()
	}
	if stats.Degraded {
		m.degraded.Inc()
	}
	m.shardRetries.Add(int64(stats.Retries))
	m.shardProbes.Add(int64(stats.Probes))
	if err != nil {
		m.reg.Counter(metricQueryErrors, helpQueryErrors, "algo", algo).Inc()
	} else {
		// Latency histograms describe successful queries only: a query
		// aborted by cancellation or budget exhaustion says nothing about
		// how long the work takes.
		m.reg.Histogram(metricLatency, helpLatency, obs.DefaultLatencyBuckets(), "algo", algo).
			Observe(stats.WallTime.Seconds())
	}
	for name, d := range obs.SumByName(stats.Trace) {
		m.reg.Histogram(metricStage, helpStage, obs.DefaultLatencyBuckets(), "stage", name).
			Observe(d.Seconds())
	}
	entry := obs.SlowLogEntry{
		Time:      time.Now(),
		Query:     q,
		Algorithm: algo,
		Shards:    stats.Shards,
		Wall:      stats.WallTime,
		Reads:     stats.IO.Reads,
		CacheHits: stats.IO.CacheHits,
		Degraded:  stats.Degraded,
		Cached:    stats.Cached,
		Coalesced: stats.Coalesced,
		Spans:     stats.Trace,
	}
	if err != nil {
		entry.Err = err.Error()
	}
	if m.slow.Observe(entry) {
		m.slowTotal.Inc()
	}
}

// Metrics returns the engine's metrics registry: per-algorithm query and
// error counters, latency and per-stage histograms, I/O counters, and
// shard/in-flight gauges. Serve it with Registry.WritePrometheus (the
// bundled HTTP server's /metrics endpoint does exactly that). Never nil.
func (e *Engine) Metrics() *obs.Registry { return e.met.reg }

// SlowLog returns the engine's bounded slow-query log. Queries whose
// wall time reaches Config.SlowQueryMillis are recorded — query text,
// algorithm, shard fan-out, I/O, and the per-stage span trace. Never
// nil; with a negative threshold the log stays empty.
func (e *Engine) SlowLog() *obs.SlowLog { return e.met.slow }

// QueryLatency returns a snapshot of the engine's query-latency
// histogram for one algorithm label (e.g. "DIL", "HDIL",
// "Disjunctive"), or a zero snapshot if no successful query with that
// label has been recorded. The bench harness diffs two snapshots around
// a measured run instead of keeping its own timers.
func (e *Engine) QueryLatency(algo string) obs.HistogramSnapshot {
	return e.met.reg.FindHistogram(metricLatency, "algo", algo).Snapshot()
}
