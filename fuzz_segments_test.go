package xrank

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// FuzzSegmentsManifest drives the segments.json structural validator
// with arbitrary JSON: it must never panic, and any manifest it accepts
// must actually satisfy the invariants the engine relies on downstream —
// at least one segment, segment directories that cannot escape the index
// directory, and the segments partitioning the document list exactly
// (openSegmentedEngine indexes documents and segment directories off
// these without re-checking).
func FuzzSegmentsManifest(f *testing.F) {
	valid := segmentsManifest{
		NextSeg: 3,
		RankVer: 1,
		Docs: []docEntry{
			{Name: "a.xml", File: "000000.xml", Size: 10, CRC32: 1},
			{Name: "b.xml", File: "000001.xml", Size: 11, CRC32: 2, Deleted: true},
			{Name: "a.xml", File: "000002.xml", Size: 12, CRC32: 3},
		},
		Segments: []segmentEntry{
			{ID: 0, Dir: ".", RankVer: 0, Docs: []uint32{0, 1}},
			{ID: 2, Dir: "seg-000002", RankVer: 1, Docs: []uint32{2}},
		},
	}
	vb, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(vb)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"next_seg":-1,"segments":[{"id":-1}]}`))
	f.Add([]byte(`{"next_seg":1,"rank_ver":0,"docs":[{"name":"a","file":"f"}],"segments":[{"id":0,"dir":"../evil","rank_ver":0,"docs":[0]}]}`))
	f.Add([]byte(`{"next_seg":1,"rank_ver":0,"docs":[{"name":"a","file":"f"}],"segments":[{"id":0,"dir":".","rank_ver":0,"docs":[0,0]}]}`))
	f.Add([]byte(`{"next_seg":2,"rank_ver":0,"docs":[],"segments":[{"id":1,"dir":"seg-000001","rank_ver":0,"docs":[4294967295]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var sm segmentsManifest
		if err := json.Unmarshal(data, &sm); err != nil {
			return
		}
		if err := validateSegmentsManifest(&sm); err != nil {
			return // rejected is always acceptable
		}
		// Accepted: re-derive the invariants independently.
		if len(sm.Segments) == 0 {
			t.Fatalf("validator accepted a manifest with no segments: %s", data)
		}
		owned := 0
		seen := make(map[int]bool, len(sm.Segments))
		for _, seg := range sm.Segments {
			if seg.ID < 0 || seg.ID >= sm.NextSeg || seen[seg.ID] {
				t.Fatalf("validator accepted segment id %d (next_seg %d, dup=%v): %s",
					seg.ID, sm.NextSeg, seen[seg.ID], data)
			}
			seen[seg.ID] = true
			if seg.Dir != baseSegmentDir &&
				(seg.Dir != filepath.Base(seg.Dir) || seg.Dir == "..") {
				t.Fatalf("validator accepted escaping segment dir %q: %s", seg.Dir, data)
			}
			for _, d := range seg.Docs {
				if int(d) >= len(sm.Docs) {
					t.Fatalf("validator accepted out-of-range document %d: %s", d, data)
				}
			}
			owned += len(seg.Docs)
		}
		if owned != len(sm.Docs) {
			t.Fatalf("validator accepted a non-partition: %d owned of %d documents: %s",
				owned, len(sm.Docs), data)
		}
	})
}
