package xrank

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xrank/internal/storage"
)

// Crash matrix for the suggest artifact: Build, AddDocs and CompactOnce
// each write a suggest.bin before their manifest commit, adding write
// boundaries to every operation. A crash at any boundary must leave the
// directory either refusing to open or opening as exactly the pre- or
// post-operation engine — with the suggest dictionary agreeing with the
// committed manifest side. The engine must never serve a half-written
// trie (the blob CRC and the structural validator turn one into an open
// error, which the matrix would catch as an unexpected third state).

// suggestCrashSig is the suggestion-side signature: full top-50
// completions for a spread of prefixes. Exact score-and-order equality
// is the bit-identical bar the search-side crashSig sets.
func suggestCrashSig(t *testing.T, e *Engine) [][]Suggestion {
	t.Helper()
	var sig [][]Suggestion
	for _, prefix := range []string{"", "x", "k", "ch", "s"} {
		got, _, err := e.Suggest(prefix, 50)
		if err != nil {
			t.Fatalf("signature suggest %q: %v", prefix, err)
		}
		sig = append(sig, got)
	}
	return sig
}

const suggestCrashDoc = `<book id="8"><title>suggested completion corpus</title>
 <chapter><t>prefix trie material</t><p>fresh xquery keyword text</p></chapter></book>`

// TestCrashMatrixSuggestBuild kills a fresh Build (suggest enabled, the
// default) at every write boundary, checking both search and suggest
// signatures on every reopen.
func TestCrashMatrixSuggestBuild(t *testing.T) {
	docs := crashCorpus()

	ref := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2})
	addCorpus(t, ref, docs)
	if _, err := ref.Build(); err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := crashSig(t, ref)
	wantSug := suggestCrashSig(t, ref)
	if len(wantSug[0]) == 0 {
		t.Fatal("reference engine suggests nothing; the matrix would prove nothing")
	}

	sizing := storage.NewFaultFS(nil, 61)
	se := NewEngine(&Config{IndexDir: t.TempDir(), Shards: 2, FS: sizing})
	addCorpus(t, se, docs)
	if _, err := se.Build(); err != nil {
		t.Fatal(err)
	}
	if got := suggestCrashSig(t, se); !reflect.DeepEqual(got, wantSug) {
		t.Fatal("fault-free FaultFS build suggests differently from the plain build")
	}
	se.Close()
	n := sizing.WriteOps()
	if n < 20 {
		t.Fatalf("build counted only %d write boundaries", n)
	}

	for k := int64(1); k <= n; k += crashStride(n, t) {
		dir := t.TempDir()
		ffs := storage.NewFaultFS(nil, 61+k)
		ffs.CrashAtWriteOp(k)
		e := NewEngine(&Config{IndexDir: dir, Shards: 2, FS: ffs})
		addCorpus(t, e, docs)
		if _, err := e.Build(); err == nil {
			t.Fatalf("crash at op %d/%d: Build reported success", k, n)
		}
		re, err := OpenEngine(dir)
		if err != nil {
			continue // pre-state: never committed
		}
		if got := crashSig(t, re); !reflect.DeepEqual(got, want) {
			t.Fatalf("crash at op %d/%d: reopened search results differ", k, n)
		}
		if got := suggestCrashSig(t, re); !reflect.DeepEqual(got, wantSug) {
			t.Fatalf("crash at op %d/%d: reopened suggestions differ from the clean build", k, n)
		}
		re.Close()
	}
}

// TestCrashMatrixSuggest kills an AddDocs flush and then a compaction
// at every write boundary, demanding the suggest dictionary track the
// committed manifest side exactly (old xor new, never a mixture).
func TestCrashMatrixSuggest(t *testing.T) {
	docs := crashCorpus()

	pristine := t.TempDir()
	b := NewEngine(&Config{IndexDir: pristine, Shards: 2})
	addCorpus(t, b, docs)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	preSug := suggestCrashSig(t, b)
	b.Close()

	postDir := filepath.Join(t.TempDir(), "post")
	copyDir(t, pristine, postDir)
	pe, err := OpenEngine(postDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.AddDoc("doc8.xml", strings.NewReader(suggestCrashDoc)); err != nil {
		t.Fatal(err)
	}
	postSug := suggestCrashSig(t, pe)
	pe.Close()
	if reflect.DeepEqual(preSug, postSug) {
		t.Fatal("adding doc8 does not change any suggestion; the matrix would prove nothing")
	}

	szDir := filepath.Join(t.TempDir(), "sz")
	copyDir(t, pristine, szDir)
	sizing := storage.NewFaultFS(nil, 67)
	se, err := OpenEngineFS(szDir, sizing)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.AddDoc("doc8.xml", strings.NewReader(suggestCrashDoc)); err != nil {
		t.Fatal(err)
	}
	nAdd := sizing.WriteOps()
	if cs, err := se.CompactOnce(0); err != nil || !cs.Compacted {
		t.Fatalf("fault-free compaction: %+v, %v", cs, err)
	}
	// Compaction rebakes stale-segment weights at the current rank
	// version; capture its suggest signature as the compacted reference.
	compactSug := suggestCrashSig(t, se)
	se.Close()
	nCompact := sizing.WriteOps() - nAdd
	if nAdd < 10 || nCompact < 10 {
		t.Fatalf("sizing counted only %d AddDocs / %d compaction boundaries", nAdd, nCompact)
	}

	for k := int64(1); k <= nAdd; k += crashStride(nAdd, t) {
		dirK := filepath.Join(t.TempDir(), "k")
		copyDir(t, pristine, dirK)
		ffs := storage.NewFaultFS(nil, 67+k)
		e, err := OpenEngineFS(dirK, ffs)
		if err != nil {
			t.Fatalf("crash replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		aerr := e.AddDoc("doc8.xml", strings.NewReader(suggestCrashDoc))
		e.Close()

		re, err := OpenEngine(dirK)
		if err != nil {
			t.Fatalf("crash at op %d/%d left the directory unopenable: %v", k, nAdd, err)
		}
		got := suggestCrashSig(t, re)
		segs := re.SegmentCount()
		re.Close()
		switch {
		case segs == 1 && reflect.DeepEqual(got, preSug):
			if aerr == nil {
				t.Fatalf("crash at op %d/%d: AddDocs claimed success but suggestions show the old state", k, nAdd)
			}
		case segs == 2 && reflect.DeepEqual(got, postSug):
			// Committed state; either op outcome is acceptable.
		default:
			t.Fatalf("crash at op %d/%d: suggestions in a third state (segments=%d, op err=%v)", k, nAdd, segs, aerr)
		}
	}

	// Compaction matrix from a two-segment pristine copy.
	twoSeg := filepath.Join(t.TempDir(), "two")
	copyDir(t, pristine, twoSeg)
	te, err := OpenEngine(twoSeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := te.AddDoc("doc8.xml", strings.NewReader(suggestCrashDoc)); err != nil {
		t.Fatal(err)
	}
	te.Close()

	for k := int64(1); k <= nCompact; k += crashStride(nCompact, t) {
		dirK := filepath.Join(t.TempDir(), "ck")
		copyDir(t, twoSeg, dirK)
		ffs := storage.NewFaultFS(nil, 71+k)
		e, err := OpenEngineFS(dirK, ffs)
		if err != nil {
			t.Fatalf("compaction replay %d: reopen: %v", k, err)
		}
		ffs.CrashAtWriteOp(k)
		_, cerr := e.CompactOnce(0)
		e.Close()

		re, err := OpenEngine(dirK)
		if err != nil {
			t.Fatalf("compaction crash at op %d/%d left the directory unopenable: %v", k, nCompact, err)
		}
		got := suggestCrashSig(t, re)
		segs := re.SegmentCount()
		re.Close()
		switch {
		case segs == 2 && reflect.DeepEqual(got, postSug):
			if cerr == nil {
				t.Fatalf("compaction crash at op %d/%d: CompactOnce claimed success but the old manifest survived", k, nCompact)
			}
		case segs == 1 && reflect.DeepEqual(got, compactSug):
			// Committed merge.
		default:
			t.Fatalf("compaction crash at op %d/%d: suggestions in a third state (segments=%d, op err=%v)",
				k, nCompact, segs, cerr)
		}
	}
}

// TestSuggestCorruptArtifact flips bytes across suggest.bin: every
// mutation must fail the open with ErrCorrupt (blob CRC or structural
// validation) — never open an engine serving a damaged dictionary.
func TestSuggestCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(&Config{IndexDir: dir})
	addCorpus(t, e, crashCorpus())
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	want := suggestCrashSig(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "suggest.bin")
	fs := storage.DefaultFS(nil)
	orig, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 4, 8, 16, 21, len(orig) / 2, len(orig) - 1} {
		if off >= len(orig) {
			continue
		}
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := storage.WriteFileAtomic(fs, path, mut); err != nil {
			t.Fatal(err)
		}
		if _, oerr := OpenEngine(dir); oerr == nil {
			t.Fatalf("flip at offset %d: corrupted suggest.bin opened cleanly", off)
		} else if !strings.Contains(oerr.Error(), "corrupt") {
			t.Fatalf("flip at offset %d: error does not report corruption: %v", off, oerr)
		}
	}
	if err := storage.WriteFileAtomic(fs, path, orig); err != nil {
		t.Fatal(err)
	}
	re, err := OpenEngine(dir)
	if err != nil {
		t.Fatalf("restored suggest.bin fails to open: %v", err)
	}
	defer re.Close()
	if got := suggestCrashSig(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("restored suggest.bin changed suggestions")
	}
}
