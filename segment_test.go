package xrank

import (
	"fmt"
	"io"
	iofs "io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The segment differential harness: an engine mutated through
// incremental AddDocs (including name shadowing), DeleteDoc and
// CompactOnce must stay BIT-IDENTICAL — exact struct equality, scores
// included — to an engine built from scratch over the same document
// history. The reference replays every document version ever added, in
// the same ID order (via the addVersion test seam), builds once, and
// re-applies the tombstones by ID; deterministic parsing and ElemRank
// then bake the exact float32 ranks the segmented engine's stale
// segments substitute at query time, so there is no score tolerance
// here, unlike the update-differential harness.

// segAlgos is the differential algorithm matrix: every conjunctive
// processor, disjunctive semantics, and the TF-IDF scoring variants
// (which exercise the cross-segment global document-frequency path).
var segAlgos = []SearchOptions{
	{Algorithm: AlgoDIL},
	{Algorithm: AlgoRDIL},
	{Algorithm: AlgoHDIL},
	{Algorithm: AlgoNaiveID},
	{Algorithm: AlgoNaiveRank},
	{Disjunctive: true},
	{Algorithm: AlgoDIL, TFIDF: true},
	{Algorithm: AlgoNaiveID, TFIDF: true},
	{Disjunctive: true, TFIDF: true},
}

func segLabel(o SearchOptions) string {
	l := searchLabel(o)
	if o.TFIDF {
		l += "+tfidf"
	}
	return l
}

// assertSegmentsAgree compares the segmented engine against the
// from-scratch reference result-for-result with exact equality.
func assertSegmentsAgree(t *testing.T, tag string, seg, scratch *Engine) {
	t.Helper()
	for _, q := range diffQueries {
		for _, algo := range segAlgos {
			opts := algo
			opts.TopM = 25
			ra, _, errA := seg.SearchDetailed(q, opts)
			rb, _, errB := scratch.SearchDetailed(q, opts)
			if errA != nil || errB != nil {
				t.Fatalf("%s %s %q: errs %v / %v", tag, segLabel(algo), q, errA, errB)
			}
			if len(ra) != len(rb) {
				t.Fatalf("%s %s %q: %d results vs %d from scratch", tag, segLabel(algo), q, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s %s %q result %d not bit-identical:\nsegmented %+v\nscratch   %+v",
						tag, segLabel(algo), q, i, ra[i], rb[i])
				}
			}
		}
	}
}

func TestSegmentDifferential(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(20030609*2 + shards)))
			base := t.TempDir()
			segDir := filepath.Join(base, "seg")

			// The full version history: document ID == slice index, exactly
			// as the engine's collection assigns them.
			type version struct {
				name    string
				content string
			}
			var history []version
			liveID := map[string]int{} // name -> newest live version's ID
			var dead []int             // tombstoned version IDs, any order
			nextUniq := 0
			newContent := func() string {
				c := diffDoc(rng, nextUniq)
				nextUniq++
				return c
			}
			liveNames := func() []string {
				names := make([]string, 0, len(liveID))
				for n := range liveID {
					names = append(names, n)
				}
				sort.Strings(names)
				return names
			}

			cur := NewEngine(&Config{IndexDir: segDir, Shards: shards})
			nextName := 0
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("doc%02d", nextName)
				nextName++
				c := newContent()
				if err := cur.AddXML(name, strings.NewReader(c)); err != nil {
					t.Fatal(err)
				}
				history = append(history, version{name, c})
				liveID[name] = len(history) - 1
			}
			if _, err := cur.Build(); err != nil {
				t.Fatal(err)
			}
			defer func() { cur.Close() }()

			scratchN := 0
			buildScratch := func() *Engine {
				scratchN++
				s := NewEngine(&Config{
					IndexDir: filepath.Join(base, fmt.Sprintf("scratch%d", scratchN)),
					Shards:   shards,
				})
				for _, v := range history {
					if err := s.addVersion(v.name, []byte(v.content), false); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := s.Build(); err != nil {
					t.Fatal(err)
				}
				for _, id := range dead {
					s.deleteDocID(uint32(id))
				}
				return s
			}
			check := func(tag string) {
				t.Helper()
				scratch := buildScratch()
				assertSegmentsAgree(t, tag, cur, scratch)
				scratch.Close()
				gone := map[string]bool{}
				for _, v := range history {
					if _, ok := liveID[v.name]; !ok {
						gone[v.name] = true
					}
				}
				assertDocsAbsent(t, tag, cur, gone)
			}
			check("initial build")

			// addBatch adds count documents in one AddDocs call; shadow picks
			// an existing live name (replacement) instead of a fresh one.
			addBatch := func(tag string, count int, shadow bool) {
				t.Helper()
				batch := map[string]string{}
				if shadow {
					names := liveNames()
					batch[names[rng.Intn(len(names))]] = newContent()
				}
				for len(batch) < count {
					name := fmt.Sprintf("doc%02d", nextName)
					nextName++
					batch[name] = newContent()
				}
				readers := make(map[string]io.Reader, len(batch))
				for n, c := range batch {
					readers[n] = strings.NewReader(c)
				}
				before := cur.SegmentCount()
				if err := cur.AddDocs(readers); err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if got := cur.SegmentCount(); got != before+1 {
					t.Fatalf("%s: segment count %d -> %d, want one delta segment appended", tag, before, got)
				}
				// Mirror in AddDocs's order: batch names sorted.
				bn := make([]string, 0, len(batch))
				for n := range batch {
					bn = append(bn, n)
				}
				sort.Strings(bn)
				for _, n := range bn {
					if id, ok := liveID[n]; ok {
						dead = append(dead, id)
					}
					history = append(history, version{n, batch[n]})
					liveID[n] = len(history) - 1
				}
			}
			deleteOne := func(tag string) {
				t.Helper()
				names := liveNames()
				victim := names[rng.Intn(len(names))]
				if err := cur.DeleteDoc(victim); err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				dead = append(dead, liveID[victim])
				delete(liveID, victim)
			}
			compact := func(tag string) {
				t.Helper()
				cs, err := cur.CompactOnce(0)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if !cs.Compacted {
					t.Fatalf("%s: CompactOnce was a no-op over %d segments", tag, cs.SegmentsBefore)
				}
				if got := cur.SegmentCount(); got != 1 {
					t.Fatalf("%s: %d segments after compaction", tag, got)
				}
			}
			reopen := func(tag string) {
				t.Helper()
				cur.Close()
				var err error
				cur, err = OpenEngine(segDir)
				if err != nil {
					t.Fatalf("%s: reopen: %v", tag, err)
				}
			}

			// A fixed operation script (content randomized by the seed)
			// guaranteeing coverage: stacked delta segments, tombstones both
			// before and after segmentation boundaries, name shadowing,
			// compaction over tombstones, and reopens from every layout.
			ops := []struct {
				name string
				run  func(tag string)
			}{
				{"add2", func(tag string) { addBatch(tag, 2, false) }},
				{"add1", func(tag string) { addBatch(tag, 1, false) }},
				{"delete", deleteOne},
				{"shadow", func(tag string) { addBatch(tag, 1, true) }},
				{"reopen", reopen},
				{"compact", compact},
				{"add2b", func(tag string) { addBatch(tag, 2, false) }},
				{"delete2", deleteOne},
				{"shadow2", func(tag string) { addBatch(tag, 2, true) }},
				{"reopen2", reopen},
				{"compact2", compact},
				{"add1b", func(tag string) { addBatch(tag, 1, false) }},
				{"reopen3", reopen},
			}
			for i, op := range ops {
				tag := fmt.Sprintf("op %d (%s)", i, op.name)
				op.run(tag)
				check(tag)
			}
		})
	}
}

// TestAddDocsIncremental pins the core acceptance criterion directly:
// AddDocs must NOT rebuild the full index. Every base-segment file is
// byte-identical after the batch; only a new delta segment, the new
// ranks blob, the new document-store entries and segments.json appear.
func TestAddDocsIncremental(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	e := NewEngine(&Config{IndexDir: dir, Shards: 2})
	for n := 0; n < 3; n++ {
		if err := e.AddXML(fmt.Sprintf("doc%02d", n), strings.NewReader(diffDoc(rng, n))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	snapshot := func() map[string]string {
		files := map[string]string{}
		err := filepath.WalkDir(dir, func(path string, d iofs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, rerr := filepath.Rel(dir, path)
			if rerr != nil {
				return rerr
			}
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			files[rel] = string(data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	before := snapshot()

	if err := e.AddDoc("doc03", strings.NewReader(diffDoc(rng, 3))); err != nil {
		t.Fatal(err)
	}
	after := snapshot()
	for rel, content := range before {
		if rel == ranksFile(0) {
			continue // retired: superseded by the versioned blob
		}
		got, ok := after[rel]
		if !ok {
			t.Fatalf("AddDocs removed base file %s", rel)
		}
		if got != content {
			t.Fatalf("AddDocs rewrote base file %s — the full index must not be rebuilt", rel)
		}
	}
	if _, ok := after[fileSegments]; !ok {
		t.Fatal("AddDocs committed no segments.json")
	}

	if got := e.SegmentCount(); got != 2 {
		t.Fatalf("SegmentCount = %d after one AddDocs, want 2", got)
	}
	if got := e.RankVersion(); got != 1 {
		t.Fatalf("RankVersion = %d after one AddDocs, want 1", got)
	}
	infos := e.Segments()
	if len(infos) != 2 || !infos[0].Stale || infos[1].Stale {
		t.Fatalf("segment staleness wrong: %+v", infos)
	}
	if infos[1].Docs != 1 || infos[1].LiveDocs != 1 {
		t.Fatalf("delta segment doc counts wrong: %+v", infos[1])
	}
	if rs, err := e.Search("uniq3"); err != nil || len(rs) == 0 {
		t.Fatalf("new document not searchable: %d results, %v", len(rs), err)
	}

	// A too-small I/O budget must abort the compaction before the commit
	// point, leaving the engine unchanged and still serving.
	if _, err := e.CompactOnce(1); err == nil {
		t.Fatal("CompactOnce under a 1-page write budget succeeded")
	}
	if got := e.SegmentCount(); got != 2 {
		t.Fatalf("failed compaction changed the segment count to %d", got)
	}
	if rs, err := e.Search("uniq3"); err != nil || len(rs) == 0 {
		t.Fatalf("engine broken after budget-aborted compaction: %d results, %v", len(rs), err)
	}

	cs, err := e.CompactOnce(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Compacted || cs.SegmentsBefore != 2 || cs.SegmentsAfter != 1 || cs.Bytes <= 0 {
		t.Fatalf("unexpected compaction stats: %+v", cs)
	}
	if got := e.SegmentCount(); got != 1 {
		t.Fatalf("SegmentCount = %d after compaction, want 1", got)
	}
	if rs, err := e.Search("uniq3"); err != nil || len(rs) == 0 {
		t.Fatalf("compacted engine lost the new document: %d results, %v", len(rs), err)
	}
	// Fully compacted at the current rank version: another call is a no-op.
	cs, err = e.CompactOnce(0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Compacted {
		t.Fatalf("CompactOnce on a fully compacted engine did work: %+v", cs)
	}
}
