package xrank

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

const proceedings = `<workshop date="28 July 2000">
  <title>XML and IR a SIGIR 2000 Workshop</title>
  <editors>David Carmel, Yoelle Maarek, Aya Soffer</editors>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <author>Gonzalo Navarro</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Introduction">Searching on structured text is more important</section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2">
      <title>Querying XML in Xyleme</title>
    </paper>
  </proceedings>
</workshop>`

func buildEngine(t *testing.T, cfg *Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	if err := e.AddXML("sigir2000", strings.NewReader(proceedings)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestEngineQuickstart(t *testing.T) {
	e := buildEngine(t, nil)
	results, err := e.Search("xql language")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	// The most specific element containing both keywords is the
	// subsection; it must be present and carry a path + snippet.
	foundSub := false
	for _, r := range results {
		if r.Tag == "subsection" {
			foundSub = true
			if !strings.Contains(r.Path, "paper/body/section/subsection") {
				t.Errorf("subsection path = %q", r.Path)
			}
			if !strings.Contains(r.Snippet, "XQL query language") {
				t.Errorf("snippet = %q", r.Snippet)
			}
			if r.Doc != "sigir2000" {
				t.Errorf("doc = %q", r.Doc)
			}
		}
		if r.Tag == "section" || r.Tag == "body" {
			t.Errorf("spurious ancestor %q in results", r.Tag)
		}
		if r.Score <= 0 {
			t.Errorf("non-positive score for %s", r.Path)
		}
	}
	if !foundSub {
		t.Errorf("subsection missing from results: %+v", results)
	}
}

func TestEngineAllAlgorithmsAgree(t *testing.T) {
	e := buildEngine(t, nil)
	var ref []SearchResult
	for _, algo := range []Algorithm{AlgoDIL, AlgoRDIL, AlgoHDIL} {
		rs, stats, err := e.SearchDetailed("xql language", SearchOptions{Algorithm: algo, TopM: 20, ColdCache: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if stats.Algorithm != algo || stats.IO.Reads == 0 {
			t.Errorf("%v stats = %+v", algo, stats)
		}
		if ref == nil {
			ref = rs
			continue
		}
		if len(rs) != len(ref) {
			t.Fatalf("%v returned %d results, want %d", algo, len(rs), len(ref))
		}
		for i := range rs {
			if rs[i].DeweyID != ref[i].DeweyID {
				t.Errorf("%v result %d = %s, want %s", algo, i, rs[i].DeweyID, ref[i].DeweyID)
			}
		}
	}
}

func TestEnginePersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	e := NewEngine(&Config{IndexDir: dir})
	if err := e.AddXML("sigir2000", strings.NewReader(proceedings)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	want, err := e.Search("xql language")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Search("xql language")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened engine: %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].DeweyID != want[i].DeweyID || got[i].Score != want[i].Score {
			t.Errorf("result %d differs after reopen: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestAnswerTags(t *testing.T) {
	e := buildEngine(t, &Config{AnswerTags: []string{"paper", "workshop"}})
	results, err := e.Search("xql language")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.Tag != "paper" && r.Tag != "workshop" {
			t.Errorf("non-answer-node result %q (%s)", r.Tag, r.Path)
		}
	}
	// The subsection hit must collapse to its paper.
	if results[0].Tag != "paper" {
		t.Errorf("top answer-node result = %q", results[0].Tag)
	}
}

func TestAncestorsNavigation(t *testing.T) {
	e := buildEngine(t, nil)
	results, err := e.Search("xql language")
	if err != nil || len(results) == 0 {
		t.Fatal(err)
	}
	var sub SearchResult
	for _, r := range results {
		if r.Tag == "subsection" {
			sub = r
		}
	}
	anc, err := e.Ancestors(sub.DeweyID)
	if err != nil {
		t.Fatal(err)
	}
	wantChain := []string{"section", "body", "paper", "proceedings", "workshop"}
	if len(anc) != len(wantChain) {
		t.Fatalf("ancestors = %d, want %d", len(anc), len(wantChain))
	}
	for i, w := range wantChain {
		if anc[i].Tag != w {
			t.Errorf("ancestor %d = %q, want %q", i, anc[i].Tag, w)
		}
	}
	if _, err := e.Ancestors("99.99"); err == nil {
		t.Errorf("Ancestors of bogus ID should fail")
	}
}

func TestMixedHTMLCollection(t *testing.T) {
	e := NewEngine(nil)
	if err := e.AddXML("sigir2000", strings.NewReader(proceedings)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		page := fmt.Sprintf(`<html><body><h1>xml research page %d</h1>
		<p>notes about the xql language</p>
		<a href="sigir2000">workshop</a></body></html>`, i)
		if err := e.AddHTML(fmt.Sprintf("page%d.html", i), strings.NewReader(page)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if info.ResolvedLinks == 0 {
		t.Errorf("HTML->XML links not resolved: %+v", info)
	}
	results, err := e.Search("xql language")
	if err != nil {
		t.Fatal(err)
	}
	sawHTML, sawXML := false, false
	for _, r := range results {
		if strings.HasSuffix(r.Doc, ".html") {
			sawHTML = true
			// HTML results must be whole documents (the root element).
			if strings.Contains(r.Path, "/") {
				t.Errorf("HTML result is not the root: %s", r.Path)
			}
		} else {
			sawXML = true
		}
	}
	if !sawHTML || !sawXML {
		t.Errorf("mixed corpus should return both kinds: html=%v xml=%v", sawHTML, sawXML)
	}
}

func TestElemRankAccessor(t *testing.T) {
	e := buildEngine(t, nil)
	r, err := e.ElemRank("0")
	if err != nil || r <= 0 {
		t.Errorf("root ElemRank = %g, %v", r, err)
	}
	if _, err := e.ElemRank("not-an-id"); err == nil {
		t.Errorf("bad ID should fail")
	}
	if _, err := e.ElemRank("9.9.9"); err == nil {
		t.Errorf("missing element should fail")
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine(nil)
	if _, err := e.Build(); err == nil {
		t.Errorf("Build with no documents should fail")
	}
	if _, err := e.Search("x"); err == nil {
		t.Errorf("Search before build should fail")
	}
	if err := e.AddXML("d", strings.NewReader("<a>hi</a>")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.AddXML("d2", strings.NewReader("<a>more</a>")); err == nil {
		t.Errorf("Add after Build should fail")
	}
	if _, err := e.Build(); err == nil {
		t.Errorf("double Build should fail")
	}
	if _, err := e.Search("   "); err == nil {
		t.Errorf("empty query should fail")
	}
	if _, _, err := e.SearchDetailed("hi", SearchOptions{Algorithm: Algorithm(99)}); err == nil {
		t.Errorf("unknown algorithm should fail")
	}
}

func TestSkipNaiveEngineErrors(t *testing.T) {
	e := NewEngine(&Config{SkipNaive: true})
	if err := e.AddXML("d", strings.NewReader(proceedings)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, algo := range []Algorithm{AlgoNaiveID, AlgoNaiveRank} {
		if _, _, err := e.SearchDetailed("xql", SearchOptions{Algorithm: algo}); err == nil {
			t.Errorf("%v on a SkipNaive index should fail", algo)
		}
	}
	if _, err := e.Search("xql language"); err != nil {
		t.Errorf("default algorithm must still work: %v", err)
	}
}

func TestFragment(t *testing.T) {
	e := buildEngine(t, nil)
	results, err := e.Search("xql language")
	if err != nil || len(results) == 0 {
		t.Fatal(err)
	}
	var sub SearchResult
	for _, r := range results {
		if r.Tag == "subsection" {
			sub = r
		}
	}
	frag, err := e.Fragment(sub.DeweyID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frag, "<subsection") || !strings.Contains(frag, "XQL query language") {
		t.Errorf("fragment = %s", frag)
	}
	// Depth-limited fragment of the whole paper.
	paper := sub.DeweyID[:strings.LastIndex(sub.DeweyID, ".")]
	paper = paper[:strings.LastIndex(paper, ".")]
	paper = paper[:strings.LastIndex(paper, ".")]
	frag2, err := e.Fragment(paper, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frag2, "<paper") || strings.Contains(frag2, "<subsection") {
		t.Errorf("depth-limited fragment = %s", frag2)
	}
	if _, err := e.Fragment("bogus", 0); err == nil {
		t.Errorf("bad ID should fail")
	}
}

func TestBuildInfoShape(t *testing.T) {
	e := NewEngine(nil)
	if err := e.AddXML("sigir2000", strings.NewReader(proceedings)); err != nil {
		t.Fatal(err)
	}
	info, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if info.NumDocs != 1 || info.NumElements == 0 || info.Terms == 0 {
		t.Errorf("info = %+v", info)
	}
	if !info.ElemRankConverged || info.ElemRankIterations == 0 {
		t.Errorf("elemrank did not run: %+v", info)
	}
	// At this miniature scale every component rounds to one page; the
	// byte-level Table 1 shape is asserted in the index package tests.
	if info.Sizes.DILList == 0 || info.Sizes.NaiveIDList < info.Sizes.DILList {
		t.Errorf("sizes shape wrong: %+v", info.Sizes)
	}
	if info.Sizes.Meta.NaiveEntries <= info.Sizes.Meta.DeweyEntries {
		t.Errorf("naive closure should exceed direct postings: %+v", info.Sizes.Meta)
	}
}
