package xrank

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"xrank/internal/storage"
	"xrank/internal/suggest"
	"xrank/internal/text"
	"xrank/internal/xmldoc"
)

// Prefix autosuggest. Each segment carries a radix-trie dictionary over
// the terms of its documents, weighted by ElemRank-weighted term
// frequency: every occurrence of a term contributes the ElemRank of its
// containing element, so completions surface the terms that dominate
// highly ranked elements rather than merely frequent ones. The trie is
// built alongside the segment's index — under the same rank version —
// and persisted as suggest.bin through the checksummed-blob protocol
// before the manifest commit, so the usual crash argument applies: a
// half-written trie is an orphan no manifest references.
//
// Query-time, Suggest merges the per-segment tries under the snapshot
// read lock with a synchronized best-first search (suggest.TopK),
// summing each term's score across segments — exactly what one trie
// over the union dictionary would return. Two deliberate deviations
// from the search path's semantics, both deterministic and documented
// in DESIGN.md:
//
//   - DeleteDoc does not touch the tries: a tombstoned document's
//     contributions persist until a full Update/rebuild, mirroring the
//     paper's Section 4.5 treatment (deletion space is reclaimed only
//     by rebuild) — and compaction keeps tombstoned documents for df
//     invariance, so the merged trie is built over the same corpus.
//   - A stale segment's trie keeps the ElemRank weights it was baked
//     under (queries do not substitute current ranks the way postings
//     merges do); suggestion weights are a ranking signal, not a score
//     the differential harness compares against search.

// fileSuggest is the per-segment suggest dictionary blob, living next
// to the segment's index files.
const fileSuggest = "suggest.bin"

// suggestMagic identifies suggest.bin's blob type ("SUGG").
const suggestMagic = 0x47475553

// DefaultSuggestK is the completion count when the caller passes k <= 0.
const DefaultSuggestK = 8

// defaultSuggestMaxK caps k when Config.SuggestMaxK is zero.
const defaultSuggestMaxK = 50

// ErrSuggestDisabled is returned by Suggest when Config.SuggestDisabled
// turned the subsystem off (the HTTP layer maps it to 403, like the
// updates endpoints).
var ErrSuggestDisabled = errors.New("xrank: suggest is disabled")

// Suggestion is one autosuggest completion.
type Suggestion = suggest.Suggestion

// suggestTrie aliases the trie type so sibling files (segment.go,
// compact.go, xrank.go) can carry it without importing the package.
type suggestTrie = suggest.Trie

// SuggestStats describes one Suggest call.
type SuggestStats struct {
	// Prefix is the normalized prefix actually completed (the last
	// token of the raw input under index tokenization rules).
	Prefix string `json:"prefix"`
	// Terms is the merged dictionary size searched (summed across
	// segments; a term present in several segments counts once each).
	Terms int `json:"terms"`
	// NodesVisited counts best-first expansions — the pruning
	// effectiveness measure.
	NodesVisited int `json:"nodes_visited"`
	// WallTime is the end-to-end completion time.
	WallTime time.Duration `json:"wall_ns"`
}

// suggestMaxK resolves the per-request completion cap.
func (e *Engine) suggestMaxK() int {
	if e.cfg.SuggestMaxK > 0 {
		return e.cfg.SuggestMaxK
	}
	return defaultSuggestMaxK
}

// SetSuggestMaxK overrides the per-request completion cap (0 restores
// the persisted config, or the default 50 if unset). Like
// SetFailOnDegraded it is a pre-serving knob: call it before queries
// are in flight.
func (e *Engine) SetSuggestMaxK(k int) { e.cfg.SuggestMaxK = k }

// Suggest returns the top-k completions of the prefix in q, scored by
// ElemRank-weighted term frequency and ordered score-descending with
// ties broken by term. q is folded through the index tokenizer
// (text.NormalizePrefix): its last token is the prefix being completed,
// so "ranked key" completes "key". k <= 0 selects DefaultSuggestK;
// k above Config.SuggestMaxK (default 50) is clamped. An empty
// normalized prefix returns the top terms of the whole dictionary.
func (e *Engine) Suggest(q string, k int) ([]Suggestion, *SuggestStats, error) {
	if !e.built {
		return nil, nil, fmt.Errorf("xrank: Suggest before Build")
	}
	if e.cfg.SuggestDisabled {
		return nil, nil, ErrSuggestDisabled
	}
	if k <= 0 {
		k = DefaultSuggestK
	}
	if max := e.suggestMaxK(); k > max {
		k = max
	}
	prefix := text.NormalizePrefix(q)
	t0 := time.Now()

	e.snapMu.RLock()
	tries := make([]*suggest.Trie, 0, len(e.segs))
	terms := 0
	for _, s := range e.segs {
		if s.sug != nil {
			tries = append(tries, s.sug)
			terms += s.sug.Terms()
		}
	}
	res, sst := suggest.TopK(tries, prefix, k)
	e.snapMu.RUnlock()

	st := &SuggestStats{
		Prefix:       prefix,
		Terms:        terms,
		NodesVisited: sst.NodesVisited,
		WallTime:     time.Since(t0),
	}
	e.met.suggestQueries.Inc()
	e.met.suggestNodes.Add(int64(sst.NodesVisited))
	if len(res) == 0 {
		e.met.suggestEmpty.Inc()
	}
	return res, st, nil
}

// SuggestTerms returns the merged dictionary size (0 when suggest is
// disabled or the engine predates the suggest artifact).
func (e *Engine) SuggestTerms() int {
	e.snapMu.RLock()
	defer e.snapMu.RUnlock()
	terms := 0
	for _, s := range e.segs {
		terms += s.sug.Terms()
	}
	return terms
}

// buildSegmentSuggest builds the suggest dictionary for one segment:
// every token occurrence of every element of the segment's documents
// contributes its element's ElemRank to the term's weight. Element
// tokens are exactly what the inverted indexes are built from, so the
// suggest dictionary and the search lexicon agree by construction.
func buildSegmentSuggest(col *xmldoc.Collection, ranks []float64, docs []uint32) *suggest.Trie {
	b := suggest.NewBuilder()
	for _, id := range docs {
		d := col.Docs[id]
		for _, el := range d.Elements {
			w := ranks[col.GlobalIndex(el)]
			for _, tok := range el.Tokens {
				b.Add(tok.Term, w)
			}
		}
	}
	return b.Build()
}

// writeSegmentSuggest persists a segment's trie as an inert artifact
// (callers write it before their manifest commit point).
func (e *Engine) writeSegmentSuggest(segPath string, tr *suggest.Trie) error {
	return storage.WriteBlobAtomic(e.fs(), filepath.Join(segPath, fileSuggest), suggestMagic, tr.Marshal())
}

// loadSegmentSuggest reopens a segment's trie, verifying the blob
// envelope and every structural invariant. A missing file is not an
// error — directories built before the suggest subsystem (or with it
// disabled) simply contribute no completions — but a present-and-bad
// file is corruption like any other.
func loadSegmentSuggest(fs storage.FS, segPath string) (*suggest.Trie, error) {
	payload, err := storage.ReadBlob(fs, filepath.Join(segPath, fileSuggest), suggestMagic)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	tr, err := suggest.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", fileSuggest, err)
	}
	return tr, nil
}

// updateSuggestGauge refreshes the dictionary-size gauge from the live
// segments. Callers hold snapMu (read or write).
func (e *Engine) updateSuggestGauge() {
	var terms int64
	for _, s := range e.segs {
		terms += int64(s.sug.Terms())
	}
	e.met.suggestTerms.Set(terms)
}
