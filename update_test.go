package xrank

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeleteDocTombstone(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	e := NewEngine(&Config{IndexDir: dir})
	if err := e.AddXML("keep", strings.NewReader(`<r><a>needle in here</a></r>`)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("drop", strings.NewReader(`<r><a>needle too</a></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	before, err := e.Search("needle")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 2 {
		t.Fatalf("before deletion: %d results", len(before))
	}
	if err := e.DeleteDoc("drop"); err != nil {
		t.Fatal(err)
	}
	after, err := e.Search("needle")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0].Doc != "keep" {
		t.Fatalf("after deletion: %+v", after)
	}
	if got := e.DeletedDocs(); len(got) != 1 || got[0] != "drop" {
		t.Errorf("DeletedDocs = %v", got)
	}
	// Tombstones persist across reopen.
	e.Close()
	re, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	again, err := re.Search("needle")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || again[0].Doc != "keep" {
		t.Fatalf("after reopen: %+v", again)
	}
	// Errors.
	if err := re.DeleteDoc("drop"); err == nil {
		t.Errorf("double delete should fail")
	}
	if err := re.DeleteDoc("nosuch"); err == nil {
		t.Errorf("deleting unknown doc should fail")
	}
}

func TestUpdateRebuild(t *testing.T) {
	dir1 := filepath.Join(t.TempDir(), "v1")
	e := NewEngine(&Config{IndexDir: dir1})
	if err := e.AddXML("old", strings.NewReader(`<r><a>alpha topic</a></r>`)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("gone", strings.NewReader(`<r><a>beta topic</a></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.DeleteDoc("gone"); err != nil {
		t.Fatal(err)
	}

	dir2 := filepath.Join(t.TempDir(), "v2")
	ne, err := e.Update(dir2, map[string]io.Reader{
		"new":       strings.NewReader(`<r><a>gamma topic</a></r>`),
		"page.html": strings.NewReader(`<html><body>delta topic page</body></html>`),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Close()

	rs, err := ne.SearchTop("topic", 10)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]bool{}
	for _, r := range rs {
		docs[r.Doc] = true
	}
	if !docs["old"] || !docs["new"] || !docs["page.html"] {
		t.Errorf("updated engine docs = %v", docs)
	}
	if docs["gone"] {
		t.Errorf("tombstoned document survived the rebuild")
	}
	// Same directory must be rejected.
	if _, err := e.Update(dir1, nil); err == nil {
		t.Errorf("Update into the same directory should fail")
	}
}

func TestDisjunctiveSearch(t *testing.T) {
	e := buildEngine(t, nil)
	rs, stats, err := e.SearchDetailed("xyleme navarro", SearchOptions{Disjunctive: true, TopM: 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || len(rs) < 2 {
		t.Fatalf("disjunctive results = %v", rs)
	}
	// Conjunctive would be empty (the words never co-occur in an element).
	con, err := e.Search("xyleme navarro")
	if err != nil {
		t.Fatal(err)
	}
	if len(con) != 0 {
		// They do co-occur somewhere high up; at minimum disjunctive must
		// return at least as many results.
		if len(rs) < len(con) {
			t.Errorf("disjunctive (%d) smaller than conjunctive (%d)", len(rs), len(con))
		}
	}
}

func TestWeightedAndTFIDFSearch(t *testing.T) {
	e := buildEngine(t, nil)
	plain, _, err := e.SearchDetailed("xql language", SearchOptions{TopM: 5, Algorithm: AlgoDIL})
	if err != nil {
		t.Fatal(err)
	}
	weighted, _, err := e.SearchDetailed("xql language", SearchOptions{
		TopM: 5, Algorithm: AlgoDIL, Weights: []float64{3, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(weighted) != len(plain) {
		t.Fatalf("weighting changed result count: %d vs %d", len(weighted), len(plain))
	}
	if weighted[0].Score == plain[0].Score {
		t.Errorf("weights had no effect on scores")
	}
	tfidf, _, err := e.SearchDetailed("xql language", SearchOptions{TopM: 5, Algorithm: AlgoDIL, TFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tfidf) == 0 {
		t.Fatalf("tfidf search empty")
	}
	if _, _, err := e.SearchDetailed("xql language", SearchOptions{Algorithm: AlgoRDIL, TFIDF: true}); err == nil {
		t.Errorf("RDIL + tfidf should be rejected")
	}
}
