package xrank

import (
	"fmt"
	"path/filepath"
	"time"

	"xrank/internal/index"
	"xrank/internal/storage"
)

// CompactionStats reports what one CompactOnce call did.
type CompactionStats struct {
	// Compacted is false when the engine was already fully compacted
	// (one segment at the current rank version) and nothing happened.
	Compacted      bool `json:"compacted"`
	SegmentsBefore int  `json:"segments_before"`
	SegmentsAfter  int  `json:"segments_after"`
	// Bytes is the total size of the merged segment's index files.
	Bytes int64  `json:"bytes"`
	Dir   string `json:"dir"`
}

// CompactOnce merges every live segment into one fresh segment built at
// the current ElemRank version, swaps the manifest atomically, and
// retires the old segments' files. The merged segment covers the whole
// collection — including tombstoned documents, whose space is only
// reclaimed by a full Update/rebuild, matching the paper's Section 4.5
// treatment of deletions; keeping them preserves every term's document
// frequency, so compaction is score-neutral and invalidates no cached
// results. budgetPages > 0 bounds the build's write I/O to that many
// page-equivalents (see storage.BudgetFS); on budget exhaustion — or
// any other failure before the manifest swap — the engine is unchanged
// and the half-built segment is an orphan.
//
// Queries run concurrently with the build; they only block for the
// brief snapshot swap. Acquiring the write lock also guarantees no
// in-flight query still holds cursors into the retired segments.
func (e *Engine) CompactOnce(budgetPages int64) (CompactionStats, error) {
	var cs CompactionStats
	if !e.built {
		return cs, fmt.Errorf("xrank: CompactOnce before Build")
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()

	cs.SegmentsBefore = len(e.segs)
	cs.SegmentsAfter = len(e.segs)
	if len(e.segs) == 1 && e.segs[0].rankVer == e.rankVer {
		return cs, nil
	}

	fs := e.fs()
	dir := e.cfg.IndexDir
	segID := e.nextSeg
	segDirName := segmentDirName(segID)
	segPath := filepath.Join(dir, segDirName)
	if err := fs.MkdirAll(segPath); err != nil {
		return cs, err
	}
	buildFS := e.cfg.FS
	if budgetPages > 0 {
		ec := storage.NewExecContext(nil)
		ec.SetBudget(budgetPages)
		buildFS = storage.NewBudgetFS(e.cfg.FS, ec)
	}
	st, err := index.BuildSharded(e.col, e.ranks, segPath, index.BuildOptions{
		RankFraction:  e.cfg.RankFraction,
		MaxPositions:  e.cfg.MaxPositions,
		SkipNaive:     e.cfg.SkipNaive,
		CompressDewey: e.cfg.CompressDewey,
		BlockPostings: e.cfg.BlockPostings,
		FS:            buildFS,
	}, e.cfg.Shards)
	if err != nil {
		return cs, fmt.Errorf("xrank: compaction: %w", err)
	}
	six, err := index.OpenSharded(segPath, index.OpenOptions{PoolPages: e.cfg.PoolPages, FS: e.cfg.FS})
	if err != nil {
		return cs, fmt.Errorf("xrank: compaction: %w", err)
	}

	allIDs := make([]uint32, e.col.NumDocs())
	for i := range allIDs {
		allIDs[i] = uint32(i)
	}
	// The merged suggest dictionary covers the same whole collection
	// (tombstones included — score-neutral, like the postings merge),
	// rebuilt at the current rank version, written before the commit.
	var sug *suggestTrie
	if !e.cfg.SuggestDisabled {
		sug = buildSegmentSuggest(e.col, e.ranks, allIDs)
		if err := e.writeSegmentSuggest(segPath, sug); err != nil {
			six.Close()
			return cs, err
		}
	}
	newSeg := &engineSegment{id: segID, dir: segDirName, rankVer: e.rankVer, docs: allIDs, ix: six, sug: sug}
	sm := &segmentsManifest{
		NextSeg:  segID + 1,
		RankVer:  e.rankVer,
		Docs:     e.docs,
		Segments: []segmentEntry{{ID: segID, Dir: segDirName, RankVer: e.rankVer, Docs: allIDs}},
	}
	// Commit point: after this write a reopen sees only the merged
	// segment; before it, only the old ones.
	if err := e.writeSegmentsManifest(sm); err != nil {
		six.Close()
		return cs, err
	}

	old := e.segs
	e.snapMu.Lock()
	e.segs = []*engineSegment{newSeg}
	e.ix = six
	e.nextSeg = segID + 1
	e.segmented = true
	e.updateSuggestGauge()
	e.snapMu.Unlock()

	// Retirement: the write lock above drained every query that could
	// pin cursors into the old segments, so their files can go. All
	// best-effort — the manifest no longer references them, so leftover
	// files after a crash are mere orphans. Segment 0 lives directly in
	// IndexDir next to engine.json, segments.json, docs/ and the ranks
	// blob; RemoveFiles only touches the index files named in its
	// manifests, so those survive.
	for _, s := range old {
		s.ix.RemoveFiles(fs)
		s.ix.Close()
		// The retired segment's suggest dictionary goes with its index
		// files (the base segment's lives directly in IndexDir, which
		// stays; only the now-unreferenced blob is removed).
		fs.Remove(filepath.Join(s.path(dir), fileSuggest))
		if s.dir != baseSegmentDir {
			fs.Remove(filepath.Join(dir, s.dir))
		}
	}

	cs.Compacted = true
	cs.SegmentsAfter = 1
	cs.Dir = segDirName
	cs.Bytes = st.DILList + st.RDILList + st.RDILIndex + st.HDILRank + st.HDILIndex +
		st.NaiveIDList + st.NaiveRankList + st.NaiveIndex
	e.met.compactions.Inc()
	e.met.compactionBytes.Add(cs.Bytes)
	e.met.segments.Set(1)
	return cs, nil
}

// StartCompactor runs a background goroutine that checks every interval
// whether the engine has accumulated more than maxSegments live
// segments (or a stale base segment) and, if so, compacts them with the
// given write budget. interval <= 0 defaults to one second; maxSegments
// < 1 is treated as 1. Errors are dropped — the next tick retries.
// Close stops the compactor and waits for it to exit; starting a second
// compactor on an engine whose first is still running is an error.
func (e *Engine) StartCompactor(interval time.Duration, maxSegments int, budgetPages int64) error {
	if !e.built {
		return fmt.Errorf("xrank: StartCompactor before Build")
	}
	if e.compactStop != nil {
		return fmt.Errorf("xrank: compactor already running")
	}
	if interval <= 0 {
		interval = time.Second
	}
	if maxSegments < 1 {
		maxSegments = 1
	}
	e.compactStop = make(chan struct{})
	e.compactDone = make(chan struct{})
	stop, done := e.compactStop, e.compactDone
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if e.SegmentCount() > maxSegments {
					e.CompactOnce(budgetPages)
				}
			}
		}
	}()
	return nil
}

// stopCompactor halts the background compactor if one is running and
// waits for it to finish any in-flight compaction.
func (e *Engine) stopCompactor() {
	if e.compactStop == nil {
		return
	}
	close(e.compactStop)
	<-e.compactDone
	e.compactStop, e.compactDone = nil, nil
}
