package xrank

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentSearches exercises the engine under parallel queries (run
// with -race): buffer pools pin/unpin concurrently, cursors are
// independent, and DeleteDoc may interleave with queries.
func TestConcurrentSearches(t *testing.T) {
	e := NewEngine(nil)
	for d := 0; d < 8; d++ {
		var b strings.Builder
		b.WriteString("<proc>")
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "<rec><t>shared topic item w%d common words</t></rec>", i%13)
		}
		b.WriteString("</proc>")
		if err := e.AddXML(fmt.Sprintf("doc%d", d), strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	queries := []string{"shared topic", "common words", "item w3", "topic common", "w5"}
	algos := []Algorithm{AlgoDIL, AlgoRDIL, AlgoHDIL}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(g+i)%len(queries)]
				a := algos[(g*7+i)%len(algos)]
				if _, _, err := e.SearchDetailed(q, SearchOptions{TopM: 5, Algorithm: a}); err != nil {
					errs <- fmt.Errorf("goroutine %d: %v on %q: %w", g, a, q, err)
					return
				}
			}
		}(g)
	}
	// Interleave a tombstone while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.DeleteDoc("doc7"); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// After the dust settles, doc7 must be gone from results.
	rs, err := e.SearchTop("shared topic", 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Doc == "doc7" {
			t.Errorf("tombstoned doc7 still in results")
		}
	}
}

// buildConcurrencyCorpus builds an engine over docs documents of recs
// records each, all sharing a small vocabulary so every query's inverted
// lists span multiple pages.
func buildConcurrencyCorpus(t *testing.T, docs, recs int) *Engine {
	return buildConcurrencyCorpusCfg(t, nil, docs, recs)
}

func buildConcurrencyCorpusCfg(t *testing.T, cfg *Config, docs, recs int) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	for d := 0; d < docs; d++ {
		var b strings.Builder
		b.WriteString("<proc>")
		for i := 0; i < recs; i++ {
			fmt.Fprintf(&b, "<rec><t>alpha beta filler%d gamma shared topic w%d</t></rec>", i%31, i%13)
		}
		b.WriteString("</proc>")
		if err := e.AddXML(fmt.Sprintf("doc%d", d), strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestConcurrentSearchContextAttribution runs many SearchContext queries
// in parallel (run with -race) and checks that each query's QueryStats.IO
// is attributed to exactly that query: its page-access total (device
// reads + buffer-pool hits) equals the total the same query performs
// solo, its read classification is internally consistent, and the
// engine-global counters equal the sum of the per-query ones.
func TestConcurrentSearchContextAttribution(t *testing.T) {
	e := buildConcurrencyCorpus(t, 8, 60)

	type combo struct {
		q    string
		algo Algorithm
	}
	combos := []combo{
		{"alpha beta", AlgoDIL},
		{"shared topic", AlgoDIL},
		{"alpha gamma", AlgoRDIL},
		{"beta topic", AlgoRDIL},
		{"alpha beta", AlgoNaiveID},
		{"gamma shared", AlgoDIL},
	}
	// Solo baselines: the page-access sequence of DIL/RDIL/Naive-ID is
	// deterministic, so accesses (reads + hits) are independent of cache
	// state and of concurrency — only the read/hit split may move.
	type baseline struct {
		accesses int64
		ids      []string
	}
	base := make(map[string]baseline)
	for _, c := range combos {
		rs, stats, err := e.SearchContext(context.Background(), c.q, SearchOptions{TopM: 5, Algorithm: c.algo})
		if err != nil {
			t.Fatalf("solo %v %q: %v", c.algo, c.q, err)
		}
		ids := make([]string, len(rs))
		for i, r := range rs {
			ids[i] = r.DeweyID
		}
		base[c.q+"/"+c.algo.String()] = baseline{accesses: stats.IO.Reads + stats.IO.CacheHits, ids: ids}
		if stats.IO.Reads+stats.IO.CacheHits == 0 {
			t.Fatalf("solo %v %q touched no pages", c.algo, c.q)
		}
	}

	before := e.IOStats()
	var totalReads, totalHits int64
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	const goroutines, iters = 8, 12
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var reads, hits int64
			for i := 0; i < iters; i++ {
				c := combos[(g*5+i)%len(combos)]
				rs, stats, err := e.SearchContext(context.Background(), c.q, SearchOptions{TopM: 5, Algorithm: c.algo})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v %q: %w", g, c.algo, c.q, err)
					return
				}
				b := base[c.q+"/"+c.algo.String()]
				if got := stats.IO.Reads + stats.IO.CacheHits; got != b.accesses {
					errs <- fmt.Errorf("goroutine %d: %v %q touched %d pages concurrently, %d solo (cross-query bleed)",
						g, c.algo, c.q, got, b.accesses)
					return
				}
				if stats.IO.Reads != stats.IO.SeqReads+stats.IO.RandReads {
					errs <- fmt.Errorf("goroutine %d: inconsistent classification %+v", g, stats.IO)
					return
				}
				if len(rs) != len(b.ids) {
					errs <- fmt.Errorf("goroutine %d: %v %q returned %d results, want %d", g, c.algo, c.q, len(rs), len(b.ids))
					return
				}
				for j := range rs {
					if rs[j].DeweyID != b.ids[j] {
						errs <- fmt.Errorf("goroutine %d: %v %q result %d = %s, want %s", g, c.algo, c.q, j, rs[j].DeweyID, b.ids[j])
						return
					}
				}
				reads += stats.IO.Reads
				hits += stats.IO.CacheHits
			}
			atomic.AddInt64(&totalReads, reads)
			atomic.AddInt64(&totalHits, hits)
		}(g)
	}
	// A ninth, cancelled query must return promptly with a context error
	// while the others keep running undisturbed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, _, err := e.SearchContext(ctx, "alpha beta", SearchOptions{TopM: 5, Algorithm: AlgoDIL})
		if !errors.Is(err, context.Canceled) {
			errs <- fmt.Errorf("pre-cancelled query err = %v, want context.Canceled", err)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	diff := e.IOStats().Sub(before)
	if diff.Reads != totalReads || diff.CacheHits != totalHits {
		t.Errorf("global counters (%d reads, %d hits) != sum of per-query stats (%d reads, %d hits)",
			diff.Reads, diff.CacheHits, totalReads, totalHits)
	}
}

// countdownCtx is a context whose deadline "expires" after a fixed number
// of Err checks, making mid-merge expiry deterministic for tests. Only
// Err is consulted by the execution context, so Done never closing is
// irrelevant here.
type countdownCtx struct {
	context.Context
	remaining int64
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.remaining, -1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// TestSearchContextCancellation checks that a deadline-expired context
// aborts a DIL merge with context.DeadlineExceeded — both before the
// first page access and, via a countdown context, in the middle of a
// large merge.
func TestSearchContextCancellation(t *testing.T) {
	e := buildConcurrencyCorpus(t, 12, 600)
	opts := SearchOptions{TopM: 10, Algorithm: AlgoDIL, ColdCache: true}

	// The merge must be large enough that 10 accesses are mid-merge.
	_, stats, err := e.SearchContext(context.Background(), "alpha beta gamma", opts)
	if err != nil {
		t.Fatal(err)
	}
	accesses := stats.IO.Reads + stats.IO.CacheHits
	if accesses <= 20 {
		t.Fatalf("corpus too small for a mid-merge test: %d page accesses", accesses)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, _, err := e.SearchContext(expired, "alpha beta gamma", opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline err = %v, want context.DeadlineExceeded", err)
	}

	mid := &countdownCtx{Context: context.Background(), remaining: 10}
	if _, _, err := e.SearchContext(mid, "alpha beta gamma", opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-merge expiry err = %v, want context.DeadlineExceeded", err)
	}
}

// TestShardedCancellationFanout checks that cancellation fans out to
// every shard worker of a partitioned index: a countdown context that
// expires mid-merge must abort the whole query with
// context.DeadlineExceeded, and every worker — including ones blocked
// mid-merge on other shards — must release its pinned pages. The pin
// check is ColdCache: BufferPool.Reset refuses to drop a pool while any
// page is pinned, so a successful ColdCache right after the aborted
// query proves no shard leaked a pin. Run under -race (the CI matrix
// covers this package).
func TestShardedCancellationFanout(t *testing.T) {
	const shards = 5
	e := buildConcurrencyCorpusCfg(t, &Config{Shards: shards}, 20, 600)
	opts := SearchOptions{TopM: 10, Algorithm: AlgoDIL, ColdCache: true}

	// Establish that the sharded merge is large enough that 12 page
	// accesses land mid-merge, and that the fan-out actually happened.
	rs, stats, err := e.SearchContext(context.Background(), "alpha beta gamma", opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != shards {
		t.Fatalf("query fanned out over %d shards, want %d", stats.Shards, shards)
	}
	if len(rs) == 0 {
		t.Fatal("sharded corpus query returned no results")
	}
	accesses := stats.IO.Reads + stats.IO.CacheHits
	if accesses <= 2*12 {
		t.Fatalf("corpus too small for a mid-merge test: %d page accesses", accesses)
	}

	for _, algo := range []Algorithm{AlgoDIL, AlgoRDIL, AlgoHDIL} {
		mid := &countdownCtx{Context: context.Background(), remaining: 12}
		if _, _, err := e.SearchContext(mid, "alpha beta gamma", SearchOptions{
			TopM: 10, Algorithm: algo, ColdCache: true,
		}); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: mid-merge expiry err = %v, want context.DeadlineExceeded", algo, err)
		}
		// Every shard worker must have unpinned its pages on the abort
		// path; Reset would fail otherwise.
		if err := e.ColdCache(); err != nil {
			t.Fatalf("%v: ColdCache after aborted sharded query: %v (a shard worker leaked a pinned page)", algo, err)
		}
	}

	// The family-wide budget must also fan out: the shards draw device
	// reads from one shared pool and abort together.
	_, _, err = e.SearchContext(context.Background(), "alpha beta gamma", SearchOptions{
		TopM: 10, Algorithm: AlgoDIL, ColdCache: true, MaxPageReads: 3,
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("sharded tiny budget err = %v, want ErrBudgetExceeded", err)
	}
	if err := e.ColdCache(); err != nil {
		t.Fatalf("ColdCache after budget abort: %v", err)
	}

	// And the engine must still be healthy: the same query completes with
	// the same results.
	rs2, stats2, err := e.SearchContext(context.Background(), "alpha beta gamma", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != len(rs) {
		t.Fatalf("follow-up query returned %d results, want %d", len(rs2), len(rs))
	}
	for i := range rs {
		if rs2[i].DeweyID != rs[i].DeweyID {
			t.Fatalf("follow-up result %d = %s, want %s", i, rs2[i].DeweyID, rs[i].DeweyID)
		}
	}
	if got := stats2.IO.Reads + stats2.IO.CacheHits; got != accesses {
		t.Errorf("follow-up query touched %d pages, want %d (cross-query state leaked)", got, accesses)
	}
}

// TestSearchContextBudget checks that exceeding MaxPageReads aborts the
// query with ErrBudgetExceeded, and that a sufficient budget does not.
func TestSearchContextBudget(t *testing.T) {
	e := buildConcurrencyCorpus(t, 6, 120)
	opts := SearchOptions{TopM: 10, Algorithm: AlgoDIL, ColdCache: true, MaxPageReads: 2}
	_, _, err := e.SearchContext(context.Background(), "alpha beta gamma", opts)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("tiny budget err = %v, want ErrBudgetExceeded", err)
	}
	opts.MaxPageReads = 1 << 20
	if _, _, err := e.SearchContext(context.Background(), "alpha beta gamma", opts); err != nil {
		t.Fatalf("ample budget err = %v", err)
	}
}
