package xrank

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSearches exercises the engine under parallel queries (run
// with -race): buffer pools pin/unpin concurrently, cursors are
// independent, and DeleteDoc may interleave with queries.
func TestConcurrentSearches(t *testing.T) {
	e := NewEngine(nil)
	for d := 0; d < 8; d++ {
		var b strings.Builder
		b.WriteString("<proc>")
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "<rec><t>shared topic item w%d common words</t></rec>", i%13)
		}
		b.WriteString("</proc>")
		if err := e.AddXML(fmt.Sprintf("doc%d", d), strings.NewReader(b.String())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	queries := []string{"shared topic", "common words", "item w3", "topic common", "w5"}
	algos := []Algorithm{AlgoDIL, AlgoRDIL, AlgoHDIL}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(g+i)%len(queries)]
				a := algos[(g*7+i)%len(algos)]
				if _, _, err := e.SearchDetailed(q, SearchOptions{TopM: 5, Algorithm: a}); err != nil {
					errs <- fmt.Errorf("goroutine %d: %v on %q: %w", g, a, q, err)
					return
				}
			}
		}(g)
	}
	// Interleave a tombstone while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.DeleteDoc("doc7"); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// After the dust settles, doc7 must be gone from results.
	rs, err := e.SearchTop("shared topic", 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Doc == "doc7" {
			t.Errorf("tombstoned doc7 still in results")
		}
	}
}
