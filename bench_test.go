// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (Guo et al., SIGMOD 2003). Each benchmark emits, via
// b.ReportMetric, the series the corresponding figure plots (simulated
// cold-disk milliseconds and page reads), at a miniature corpus scale so
// `go test -bench=.` stays fast; cmd/xrank-bench runs the same experiments
// at full scale and prints the paper-style tables (see EXPERIMENTS.md).
package xrank_test

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"xrank"
	"xrank/internal/bench"
	"xrank/internal/datagen/dblp"
	"xrank/internal/datagen/xmark"
	"xrank/internal/elemrank"
	"xrank/internal/index"
	"xrank/internal/xmldoc"
)

// TestMain removes the shared benchmark fixtures after the run.
func TestMain(m *testing.M) {
	code := m.Run()
	if fixPerf != nil {
		fixPerf.Close()
	}
	if fixDBLP != nil {
		fixDBLP.Close()
	}
	if fixDir != "" {
		os.RemoveAll(fixDir)
	}
	os.Exit(code)
}

// Lazily built shared fixtures (building corpora per-benchmark would drown
// the measurements).
var (
	fixOnce sync.Once
	fixDir  string
	fixPerf *xrank.Engine // long-list performance corpus
	fixDBLP *xrank.Engine
	fixErr  error

	graphOnce  sync.Once
	graphDBLP  *elemrank.Graph
	graphXMark *elemrank.Graph
	graphErr   error
)

func perfEngines(b *testing.B) (*xrank.Engine, *xrank.Engine) {
	b.Helper()
	fixOnce.Do(func() {
		fixDir, fixErr = os.MkdirTemp("", "xrank-benchfix-*")
		if fixErr != nil {
			return
		}
		fixPerf, _, fixErr = bench.BuildPerfEngine(fixDir+"/perf", 24000, 42)
		if fixErr != nil {
			return
		}
		fixDBLP, _, fixErr = bench.BuildEngine(bench.CorpusSpec{Name: "dblp", Scale: 0.3, Seed: 42}, fixDir+"/dblp")
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixPerf, fixDBLP
}

func graphs(b *testing.B) (*elemrank.Graph, *elemrank.Graph) {
	b.Helper()
	graphOnce.Do(func() {
		build := func(docs map[string]string) (*elemrank.Graph, error) {
			c := xmldoc.NewCollection()
			names := make([]string, 0, len(docs))
			for n := range docs {
				names = append(names, n)
			}
			// Deterministic insertion order.
			for i := range names {
				for j := i + 1; j < len(names); j++ {
					if names[j] < names[i] {
						names[i], names[j] = names[j], names[i]
					}
				}
			}
			for _, n := range names {
				if _, err := c.AddXML(n, strings.NewReader(docs[n]), nil); err != nil {
					return nil, err
				}
			}
			g, _ := elemrank.BuildGraph(c)
			return g, nil
		}
		dd := map[string]string{}
		for _, d := range dblp.Generate(dblp.Params{Seed: 1, Docs: 10, PapersPerDoc: 80}) {
			dd[d.Name] = d.XML
		}
		graphDBLP, graphErr = build(dd)
		if graphErr != nil {
			return
		}
		graphXMark, graphErr = build(map[string]string{
			"xmark": xmark.Generate(xmark.Params{Seed: 1, Items: 500, People: 300, OpenAuctions: 250, ClosedAuctions: 150}),
		})
	})
	if graphErr != nil {
		b.Fatal(graphErr)
	}
	return graphDBLP, graphXMark
}

// BenchmarkElemRank regenerates E1 (Section 3.2): the offline ElemRank
// power iteration on both dataset shapes.
func BenchmarkElemRank(b *testing.B) {
	gd, gx := graphs(b)
	for _, c := range []struct {
		name string
		g    *elemrank.Graph
	}{{"DBLP", gd}, {"XMark", gx}} {
		b.Run(c.name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := elemrank.Compute(c.g, elemrank.DefaultParams())
				if err != nil || !res.Converged {
					b.Fatalf("compute: %v converged=%v", err, res.Converged)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
			b.ReportMetric(float64(c.g.N), "elements")
		})
	}
}

// BenchmarkIndexBuild regenerates E2 (Table 1): building all five index
// variants, reporting the space shape as bytes-per-variant metrics.
func BenchmarkIndexBuild(b *testing.B) {
	docs := dblp.Generate(dblp.Params{Seed: 1, Docs: 6, PapersPerDoc: 60})
	c := xmldoc.NewCollection()
	for _, d := range docs {
		if _, err := c.AddXML(d.Name, strings.NewReader(d.XML), nil); err != nil {
			b.Fatal(err)
		}
	}
	g, _ := elemrank.BuildGraph(c)
	res, err := elemrank.Compute(g, elemrank.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var stats *index.BuildStats
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		stats, err = index.Build(c, res.Scores, dir, index.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.NaiveIDList), "naiveID-bytes")
	b.ReportMetric(float64(stats.DILList), "dil-bytes")
	b.ReportMetric(float64(stats.RDILIndex), "rdil-index-bytes")
	b.ReportMetric(float64(stats.HDILIndex), "hdil-index-bytes")
}

// benchQueries measures one algorithm on one query set, reporting the
// figure's series values.
func benchQueries(b *testing.B, e *xrank.Engine, algo xrank.Algorithm, queries [][]string, topM int) {
	b.Helper()
	var m bench.Measurement
	for i := 0; i < b.N; i++ {
		var err error
		m, err = bench.MeasureQueries(e, algo, queries, topM)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.SimTime.Microseconds())/1000, "simulated-ms")
	b.ReportMetric(float64(m.Reads), "page-reads")
}

// BenchmarkQueryHighCorr regenerates E3 (Figure 10): query cost by
// algorithm and keyword count under high keyword correlation.
func BenchmarkQueryHighCorr(b *testing.B) {
	perf, _ := perfEngines(b)
	for _, algo := range []xrank.Algorithm{
		xrank.AlgoNaiveID, xrank.AlgoNaiveRank, xrank.AlgoDIL, xrank.AlgoRDIL, xrank.AlgoHDIL,
	} {
		for k := 1; k <= 4; k++ {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				benchQueries(b, perf, algo, bench.HighCorrQueries(k, 3), 10)
			})
		}
	}
}

// BenchmarkQueryLowCorr regenerates E4 (Figure 11): the same sweep under
// low keyword correlation (the paper plots DIL, RDIL and HDIL).
func BenchmarkQueryLowCorr(b *testing.B) {
	perf, _ := perfEngines(b)
	for _, algo := range []xrank.Algorithm{xrank.AlgoDIL, xrank.AlgoRDIL, xrank.AlgoHDIL} {
		for k := 1; k <= 4; k++ {
			b.Run(fmt.Sprintf("%s/k=%d", algo, k), func(b *testing.B) {
				benchQueries(b, perf, algo, bench.LowCorrQueries(k, 3), 10)
			})
		}
	}
}

// BenchmarkQueryTopM regenerates E5 (Section 5.4 / [18]): query cost vs
// the desired number of results m.
func BenchmarkQueryTopM(b *testing.B) {
	perf, _ := perfEngines(b)
	for _, algo := range []xrank.Algorithm{xrank.AlgoDIL, xrank.AlgoRDIL, xrank.AlgoHDIL} {
		for _, m := range []int{5, 10, 20, 40, 80} {
			b.Run(fmt.Sprintf("%s/m=%d", algo, m), func(b *testing.B) {
				benchQueries(b, perf, algo, bench.HighCorrQueries(2, 3), m)
			})
		}
	}
}

// BenchmarkQualityQueries regenerates E6 (Section 5.2): the anecdote
// queries as end-to-end searches (their cost, not their quality — quality
// verdicts are asserted in the bench package tests and printed by
// cmd/xrank-bench).
func BenchmarkQualityQueries(b *testing.B) {
	_, dblpEng := perfEngines(b)
	for _, q := range []string{"gray", "author gray"} {
		b.Run(strings.ReplaceAll(q, " ", "_"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dblpEng.SearchTop(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVariants regenerates E7a: the cost of each ElemRank
// formula refinement from Section 3.1.
func BenchmarkAblationVariants(b *testing.B) {
	gd, _ := graphs(b)
	for _, v := range []elemrank.Variant{
		elemrank.VariantFinal, elemrank.VariantPageRank,
		elemrank.VariantBidirectional, elemrank.VariantDiscriminated,
	} {
		b.Run(v.String(), func(b *testing.B) {
			p := elemrank.DefaultParams()
			p.Variant = v
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := elemrank.Compute(gd, p)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}
