package xrank

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The block-postings differential harness: an engine using the block
// postings format (format v2 — delta-coded blocks plus a skip index, with
// whole-block pruning in every Dewey-family query processor) must stay
// BIT-IDENTICAL — exact struct equality, scores included — to an engine
// on the v1 per-entry format over the same document history and the same
// mutation script. Both engines replay identical AddDocs / DeleteDoc /
// CompactOnce / reopen sequences; any divergence in results, scores or
// tie-break order indicates an unsound block skip or a block codec bug.
func TestBlockPostingsDifferential(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(20030609*5 + shards)))
			base := t.TempDir()
			v1Dir := filepath.Join(base, "v1")
			v2Dir := filepath.Join(base, "v2")
			v1 := NewEngine(&Config{IndexDir: v1Dir, Shards: shards})
			v2 := NewEngine(&Config{IndexDir: v2Dir, Shards: shards, BlockPostings: true})
			defer func() { v1.Close(); v2.Close() }()

			// Enough documents that the common vocabulary terms span several
			// blocks at shards=1, so pruning decisions have real targets.
			live := map[string]bool{}
			nextName, nextUniq := 0, 0
			liveNames := func() []string {
				names := make([]string, 0, len(live))
				for n := range live {
					names = append(names, n)
				}
				sort.Strings(names)
				return names
			}
			addBoth := func(tag string, count int, shadow bool) {
				t.Helper()
				batch := map[string]string{}
				if shadow {
					names := liveNames()
					batch[names[rng.Intn(len(names))]] = diffDoc(rng, nextUniq)
					nextUniq++
				}
				for len(batch) < count {
					batch[fmt.Sprintf("doc%02d", nextName)] = diffDoc(rng, nextUniq)
					nextName++
					nextUniq++
				}
				for _, e := range []*Engine{v1, v2} {
					readers := make(map[string]io.Reader, len(batch))
					for n, c := range batch {
						readers[n] = strings.NewReader(c)
					}
					if err := e.AddDocs(readers); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
				}
				for n := range batch {
					live[n] = true
				}
			}

			for i := 0; i < 24; i++ {
				name := fmt.Sprintf("doc%02d", nextName)
				nextName++
				c := diffDoc(rng, nextUniq)
				nextUniq++
				if err := v1.AddXML(name, strings.NewReader(c)); err != nil {
					t.Fatal(err)
				}
				if err := v2.AddXML(name, strings.NewReader(c)); err != nil {
					t.Fatal(err)
				}
				live[name] = true
			}
			if _, err := v1.Build(); err != nil {
				t.Fatal(err)
			}
			if _, err := v2.Build(); err != nil {
				t.Fatal(err)
			}
			check := func(tag string) {
				t.Helper()
				assertEnginesAgree(t, tag, v2, v1)
			}
			check("initial build")

			// The v2 engine must actually be decoding blocks — otherwise this
			// test silently compares v1 against itself.
			if _, st, err := v2.SearchDetailed("alpha beta", SearchOptions{Algorithm: AlgoDIL, TopM: 10}); err != nil {
				t.Fatal(err)
			} else if st.IO.BlocksDecoded == 0 {
				t.Fatal("block-format engine decoded no blocks; format 2 not in effect")
			}
			if _, st, err := v1.SearchDetailed("alpha beta", SearchOptions{Algorithm: AlgoDIL, TopM: 10}); err != nil {
				t.Fatal(err)
			} else if st.IO.BlocksDecoded != 0 || st.IO.BlocksSkipped != 0 {
				t.Fatalf("v1 engine reported block counters: %+v", st.IO)
			}

			deleteBoth := func(tag string) {
				t.Helper()
				names := liveNames()
				victim := names[rng.Intn(len(names))]
				for _, e := range []*Engine{v1, v2} {
					if err := e.DeleteDoc(victim); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
				}
				delete(live, victim)
			}
			compactBoth := func(tag string) {
				t.Helper()
				for _, e := range []*Engine{v1, v2} {
					if _, err := e.CompactOnce(0); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
				}
			}
			reopenBoth := func(tag string) {
				t.Helper()
				v1.Close()
				v2.Close()
				var err error
				if v1, err = OpenEngine(v1Dir); err != nil {
					t.Fatalf("%s: reopen v1: %v", tag, err)
				}
				if v2, err = OpenEngine(v2Dir); err != nil {
					t.Fatalf("%s: reopen v2: %v", tag, err)
				}
				if !v2.Config().BlockPostings {
					t.Fatalf("%s: reopened v2 engine lost Config.BlockPostings", tag)
				}
			}

			ops := []struct {
				name string
				run  func(tag string)
			}{
				{"add3", func(tag string) { addBoth(tag, 3, false) }},
				{"delete", deleteBoth},
				{"shadow", func(tag string) { addBoth(tag, 2, true) }},
				{"reopen", reopenBoth},
				{"compact", compactBoth},
				{"add2", func(tag string) { addBoth(tag, 2, false) }},
				{"delete2", deleteBoth},
				{"reopen2", reopenBoth},
				{"compact2", compactBoth},
				{"add1", func(tag string) { addBoth(tag, 1, false) }},
				{"reopen3", reopenBoth},
			}
			for i, op := range ops {
				tag := fmt.Sprintf("op %d (%s)", i, op.name)
				op.run(tag)
				check(tag)
			}
		})
	}
}
