package xrank

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xrank/internal/obs"
)

// engineSpans are the sequential top-level stages every query records;
// they must account for (nearly) the whole wall time.
var engineSpans = []string{"tokenize", "execute", "materialize"}

func TestQueryStatsTracePerAlgorithm(t *testing.T) {
	e := buildEngine(t, nil)
	cases := []struct {
		name string
		opts SearchOptions
		want string // a span name prefix the algorithm must record
	}{
		{"DIL", SearchOptions{Algorithm: AlgoDIL}, "dil."},
		{"RDIL", SearchOptions{Algorithm: AlgoRDIL}, "rdil."},
		{"HDIL", SearchOptions{Algorithm: AlgoHDIL}, "hdil."},
		{"NaiveID", SearchOptions{Algorithm: AlgoNaiveID}, "naiveid."},
		{"NaiveRank", SearchOptions{Algorithm: AlgoNaiveRank}, "naiverank."},
		{"Disjunctive", SearchOptions{Disjunctive: true}, "disj."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stats, err := e.SearchDetailed("xql language", tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			sums := obs.SumByName(stats.Trace)
			for _, s := range engineSpans {
				if _, ok := sums[s]; !ok {
					t.Errorf("trace missing engine span %q: %v", s, spanNames(stats.Trace))
				}
			}
			found := false
			for name := range sums {
				if strings.HasPrefix(name, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("trace has no %q* span: %v", tc.want, spanNames(stats.Trace))
			}
			// The sequential engine stages must account for the query's
			// wall time (setup outside them is microseconds; the slack
			// absorbs timer noise).
			staged := sums["tokenize"] + sums["execute"] + sums["materialize"]
			if staged > stats.WallTime {
				t.Errorf("engine spans sum to %v > wall time %v", staged, stats.WallTime)
			}
			if stats.WallTime-staged > 50*time.Millisecond {
				t.Errorf("engine spans sum to %v, wall time %v: unaccounted gap too large", staged, stats.WallTime)
			}
		})
	}
}

func TestQueryStatsTraceSharded(t *testing.T) {
	e := NewEngine(&Config{Shards: 2})
	for _, name := range []string{"a", "b", "c"} {
		if err := e.AddXML(name, strings.NewReader(proceedings)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	_, stats, err := e.SearchDetailed("xql language", SearchOptions{Algorithm: AlgoDIL})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 2 {
		t.Fatalf("shards = %d", stats.Shards)
	}
	sums := obs.SumByName(stats.Trace)
	shardSpans := 0
	for name := range sums {
		if strings.HasPrefix(name, "shard") && strings.HasSuffix(name, ".exec") {
			shardSpans++
		}
	}
	if shardSpans != 2 {
		t.Errorf("per-shard spans = %d, want 2: %v", shardSpans, spanNames(stats.Trace))
	}
	if _, ok := sums["merge.topk"]; !ok {
		t.Errorf("trace missing merge.topk: %v", spanNames(stats.Trace))
	}
}

func TestEngineMetricsAndSlowLog(t *testing.T) {
	e := buildEngine(t, nil)
	e.SlowLog().SetThreshold(0) // log every query

	if _, _, err := e.SearchDetailed("xql language", SearchOptions{Algorithm: AlgoDIL, ColdCache: true}); err != nil {
		t.Fatal(err)
	}
	if snap := e.QueryLatency("DIL"); snap.Count != 1 {
		t.Errorf("DIL latency count = %d, want 1", snap.Count)
	}
	// A budget of one page read cannot satisfy a cold-cache RDIL query
	// (its B+-tree probes alone need more); the failure must land in the
	// error counter, not the latency histogram.
	_, _, err := e.SearchDetailed("xql language", SearchOptions{Algorithm: AlgoRDIL, ColdCache: true, MaxPageReads: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget query err = %v", err)
	}
	if snap := e.QueryLatency("RDIL"); snap.Count != 0 {
		t.Errorf("RDIL latency count after failure = %d, want 0", snap.Count)
	}

	var b strings.Builder
	if err := e.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`xrank_queries_total{algo="DIL"} 1`,
		`xrank_queries_total{algo="RDIL"} 1`,
		`xrank_query_errors_total{algo="RDIL"} 1`,
		`xrank_query_latency_seconds_count{algo="DIL"} 1`,
		`xrank_query_stage_seconds_count{stage="execute"} 2`,
		"xrank_index_shards 1",
		"xrank_inflight_queries 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The cold-cache query did real device reads; both must show up.
	if !strings.Contains(out, "xrank_page_reads_total ") || strings.Contains(out, "xrank_page_reads_total 0\n") {
		t.Errorf("xrank_page_reads_total missing or zero:\n%s", out)
	}

	entries := e.SlowLog().Entries()
	if len(entries) != 2 {
		t.Fatalf("slowlog entries = %d, want 2", len(entries))
	}
	// Entries are newest-first: the failed budget query, then the clean one.
	if entries[0].Err == "" || entries[0].Algorithm != "RDIL" {
		t.Errorf("failed-query slowlog entry = %+v", entries[0])
	}
	if entries[1].Err != "" || entries[1].Algorithm != "DIL" {
		t.Errorf("clean-query slowlog entry = %+v", entries[1])
	}
	for _, en := range entries {
		if en.Query != "xql language" || en.Shards != 1 {
			t.Errorf("slowlog entry = %+v", en)
		}
	}
	if len(entries[1].Spans) == 0 {
		t.Errorf("slowlog entry carries no spans")
	}
	if e.SlowLog().Total() != 2 {
		t.Errorf("slowlog total = %d", e.SlowLog().Total())
	}
}

func TestSlowLogThresholdConfig(t *testing.T) {
	e := buildEngine(t, &Config{SlowQueryMillis: -1})
	if _, _, err := e.SearchDetailed("xql language", SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	if n := len(e.SlowLog().Entries()); n != 0 {
		t.Errorf("disabled slow log recorded %d entries", n)
	}
}

func spanNames(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
