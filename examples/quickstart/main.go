// Quickstart: index the paper's Figure 1 workshop document and run the
// worked example query "XQL language" (Section 2.2), showing the
// most-specific-result semantics and ancestor navigation.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrank"
)

const workshop = `<workshop date="28 July 2000">
  <title>XML and IR a SIGIR 2000 Workshop</title>
  <editors>David Carmel, Yoelle Maarek, Aya Soffer</editors>
  <proceedings>
    <paper id="1">
      <title>XQL and Proximal Nodes</title>
      <author>Ricardo Baeza-Yates</author>
      <author>Gonzalo Navarro</author>
      <abstract>We consider the recently proposed language</abstract>
      <body>
        <section name="Introduction">Searching on structured text is more important</section>
        <section name="Implementing XML Operations">
          <subsection name="Path Expressions">At first sight the XQL query language looks</subsection>
        </section>
        <cite ref="2">Querying XML in Xyleme</cite>
      </body>
    </paper>
    <paper id="2">
      <title>Querying XML in Xyleme</title>
    </paper>
  </proceedings>
</workshop>`

func main() {
	// 1. Build an engine. A nil config selects the paper's parameters
	// (d1=0.35, d2=0.25, d3=0.25, decay=0.75, proximity on).
	e := xrank.NewEngine(nil)
	if err := e.AddXML("sigir2000", strings.NewReader(workshop)); err != nil {
		log.Fatal(err)
	}
	info, err := e.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	fmt.Printf("indexed %d elements, ElemRank converged in %d iterations\n\n",
		info.NumElements, info.ElemRankIterations)

	// 2. Query. The most specific element containing both keywords — the
	// <subsection> — is returned; its <section> and <body> ancestors are
	// suppressed as spurious; the <paper> appears too because its title
	// and abstract contain independent occurrences.
	results, err := e.Search("XQL language")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`results for "XQL language":`)
	for i, r := range results {
		fmt.Printf("%d. [%.3g] <%s> %s\n   %q\n", i+1, r.Score, r.Tag, r.Path, r.Snippet)
	}

	// 3. Navigate up for context (Section 2.2's user interaction).
	if len(results) > 0 {
		anc, err := e.Ancestors(results[0].DeweyID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nancestors of the top result (%s):\n", results[0].Path)
		for _, a := range anc {
			fmt.Printf("  <%s> %s\n", a.Tag, a.Path)
		}

		// 4. Render the result as an XML fragment.
		frag, err := e.Fragment(results[0].DeweyID, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop result fragment:\n%s\n", frag)
	}
}
