// Mixed web search: indexes HTML pages and XML documents in one engine,
// demonstrating XRANK's design goal of generalizing an HTML search engine
// (Section 1): HTML pages are two-level documents, ElemRank over them is
// exactly PageRank, and queries return whole pages next to fine-grained
// XML elements.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrank"
	"xrank/internal/datagen/htmlgen"
)

const pressRelease = `<release date="2000-05-04">
  <headline>consortium announces the xql query language</headline>
  <body>
    <para>the working group published the xql language draft today</para>
    <para>early adopters report good results indexing archives</para>
  </body>
</release>`

func main() {
	e := xrank.NewEngine(nil)

	// A small synthetic web of hyperlinked HTML pages.
	pages := htmlgen.Generate(htmlgen.Params{Seed: 11, Pages: 40})
	for _, p := range pages {
		if err := e.AddHTML(p.Name, strings.NewReader(p.HTML)); err != nil {
			log.Fatal(err)
		}
	}
	// Two hand-written pages that mention "xql language" and link to the
	// XML press release and to each other — hyperlink structure feeds the
	// rankings exactly like PageRank.
	hub := `<html><body><h1>query language portal</h1>
	<p>all about the xql language</p>
	<a href="release.xml">official release</a>
	<a href="page0001.html">archive</a></body></html>`
	leaf := `<html><body><p>notes mentioning the xql language once</p>
	<a href="hub.html">back to the portal</a></body></html>`
	for name, content := range map[string]string{"hub.html": hub, "leaf.html": leaf} {
		if err := e.AddHTML(name, strings.NewReader(content)); err != nil {
			log.Fatal(err)
		}
	}
	// And one structured XML document in the same collection.
	if err := e.AddXML("release.xml", strings.NewReader(pressRelease)); err != nil {
		log.Fatal(err)
	}

	info, err := e.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	fmt.Printf("mixed collection: %d documents (%d elements), %d hyperlinks\n\n",
		e.NumDocs(), info.NumElements, info.ResolvedLinks)

	results, err := e.Search("xql language")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`results for "xql language" over HTML + XML:`)
	for i, r := range results {
		kind := "XML element"
		if strings.HasSuffix(r.Doc, ".html") {
			kind = "HTML page " // whole-document result
		}
		fmt.Printf("%d. [%.3g] %s <%s> %s (%s)\n", i+1, r.Score, kind, r.Tag, r.Path, r.Doc)
	}
}
