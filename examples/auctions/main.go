// Deep-document search: builds an XMark-shaped auction site (one document,
// depth ≈ 10) and shows why returning the most specific element matters —
// the Section 5.2 'stained mirror' anecdote, where the match spans an
// item's <name> and its nested description. Also demonstrates pre-defined
// answer nodes (Section 2.2): restricting results to <item> elements.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrank"
	"xrank/internal/datagen/xmark"
)

func main() {
	doc := xmark.Generate(xmark.Params{
		Seed:           7,
		Items:          600,
		OpenAuctions:   400,
		ClosedAuctions: 250,
		PlantAnecdotes: true, // item named 'stained' with 'mirror' description, referenced by many auctions
	})

	// Engine 1: every element is an answer node (the paper's default).
	e := xrank.NewEngine(nil)
	if err := e.AddXML("site", strings.NewReader(doc)); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	fmt.Println(`query "stained mirror" (all elements are answer nodes):`)
	results, err := e.Search("stained mirror")
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results[:min(5, len(results))] {
		fmt.Printf("%d. [%.3g] <%s> %s\n", i+1, r.Score, r.Tag, r.Path)
	}

	// Engine 2: a domain expert declares <item> and <open_auction> the
	// answer nodes; every raw result collapses to its nearest such
	// ancestor.
	e2 := xrank.NewEngine(&xrank.Config{AnswerTags: []string{"item", "open_auction", "closed_auction"}})
	if err := e2.AddXML("site", strings.NewReader(doc)); err != nil {
		log.Fatal(err)
	}
	if _, err := e2.Build(); err != nil {
		log.Fatal(err)
	}
	defer e2.Close()

	fmt.Println(`
query "stained mirror" (answer nodes: item, open_auction, closed_auction):`)
	results2, err := e2.Search("stained mirror")
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results2[:min(5, len(results2))] {
		fmt.Printf("%d. [%.3g] <%s> %s\n", i+1, r.Score, r.Tag, r.Path)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
