// Bibliography search: builds a DBLP-shaped citation corpus and
// demonstrates hyperlink-aware element ranking — the Section 5.2 'gray'
// anecdotes. The <author> elements of heavily cited papers outrank the
// <title> elements of papers about "gray codes", and adding the keyword
// "author" drops the title matches via two-dimensional proximity.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrank"
	"xrank/internal/datagen/dblp"
)

func main() {
	docs := dblp.Generate(dblp.Params{
		Seed:           2026,
		Docs:           16,
		PapersPerDoc:   80,
		PlantAnecdotes: true, // 'jim gray' in top-cited papers, 'gray codes' titles elsewhere
	})
	e := xrank.NewEngine(nil)
	for _, d := range docs {
		if err := e.AddXML(d.Name, strings.NewReader(d.XML)); err != nil {
			log.Fatal(err)
		}
	}
	info, err := e.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	fmt.Printf("corpus: %d proceedings, %d elements, %d citation links\n",
		info.NumDocs, info.NumElements, info.ResolvedLinks)

	show := func(query string) {
		fmt.Printf("\nquery %q:\n", query)
		results, stats, err := e.SearchDetailed(query, xrank.SearchOptions{TopM: 6})
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range results {
			fmt.Printf("%d. [%.3g] <%s> %s — %q\n", i+1, r.Score, r.Tag, r.Doc, r.Snippet)
		}
		fmt.Printf("   (%s, %v)\n", stats.Algorithm, stats.WallTime.Round(1e3))
	}

	// ElemRank propagates citation importance down to sub-elements:
	// author fields of famous papers come first, then gray-code titles.
	show("gray")

	// The tag name "author" is a value (Section 2.1), and the smallest
	// window containing both keywords is tiny inside <author> elements —
	// so title-only matches sink.
	show("author gray")
}
