package xrank_test

import (
	"fmt"
	"log"
	"strings"

	"xrank"
)

// Example indexes a small document collection and runs the paper's worked
// example query, showing the most-specific-result semantics.
func Example() {
	e := xrank.NewEngine(nil)
	defer e.Close()
	doc := `<workshop>
	  <title>XML and IR workshop</title>
	  <paper id="1">
	    <title>XQL and Proximal Nodes</title>
	    <abstract>We consider the recently proposed language</abstract>
	    <body><section><subsection>the XQL query language up close</subsection></section></body>
	  </paper>
	</workshop>`
	if err := e.AddXML("proceedings", strings.NewReader(doc)); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		log.Fatal(err)
	}
	results, err := e.Search("xql language")
	if err != nil {
		log.Fatal(err)
	}
	// The <subsection> directly contains both keywords; its section/body
	// ancestors are suppressed; the <paper> qualifies independently via
	// its title (XQL) and abstract (language).
	for _, r := range results {
		fmt.Printf("<%s> %s\n", r.Tag, r.Path)
	}
	// Output:
	// <subsection> workshop/paper/body/section/subsection
	// <paper> workshop/paper
}

// ExampleEngine_SearchDetailed shows algorithm selection and cost
// statistics.
func ExampleEngine_SearchDetailed() {
	e := xrank.NewEngine(nil)
	defer e.Close()
	if err := e.AddXML("d", strings.NewReader("<r><a>alpha beta</a><b>alpha</b></r>")); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		log.Fatal(err)
	}
	results, stats, err := e.SearchDetailed("alpha beta", xrank.SearchOptions{
		TopM:      5,
		Algorithm: xrank.AlgoDIL,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats.Algorithm, len(results), results[0].Tag)
	// Output: DIL 1 a
}

// ExampleEngine_Search_disjunctive demonstrates the disjunctive semantics
// extension: elements matching any keyword are returned.
func ExampleEngine_Search_disjunctive() {
	e := xrank.NewEngine(nil)
	defer e.Close()
	if err := e.AddXML("d", strings.NewReader("<r><a>apples</a><b>oranges</b></r>")); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Build(); err != nil {
		log.Fatal(err)
	}
	conj, _ := e.Search("apples oranges")
	disj, _, err := e.SearchDetailed("apples oranges", xrank.SearchOptions{Disjunctive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conjunctive:", len(conj), "disjunctive:", len(disj))
	// Output: conjunctive: 1 disjunctive: 2
}
